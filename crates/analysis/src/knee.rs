//! Knee-point detection — a complementary way to pick "the" operating
//! point from a front. Where the Fig. 5 utility-per-energy peak rewards
//! absolute efficiency, the knee rewards *marginal* efficiency: the point
//! where spending one more joule starts buying noticeably less utility.
//! For the paper's fronts the two usually bracket the same region.

use crate::front::{FrontPoint, ParetoFront};

/// The knee of a front, computed by the maximum-distance-to-chord rule:
/// normalise both objectives to `[0, 1]`, draw the chord between the
/// front's two extremes, and pick the point farthest above it.
///
/// Returns `None` for fronts with fewer than three points (no interior) or
/// degenerate spans.
pub fn knee_point(front: &ParetoFront) -> Option<(usize, FrontPoint)> {
    let pts = front.points();
    if pts.len() < 3 {
        return None;
    }
    let first = pts[0];
    let last = pts[pts.len() - 1];
    let e_span = last.energy - first.energy;
    let u_span = last.utility - first.utility;
    if e_span <= 0.0 || u_span <= 0.0 {
        return None;
    }
    // Normalised chord from (0, 0) to (1, 1): signed elevation of a point
    // above the chord is u_norm - e_norm (scaled distance; the constant
    // 1/√2 factor does not change the argmax).
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in pts.iter().enumerate().skip(1).take(pts.len() - 2) {
        let e_norm = (p.energy - first.energy) / e_span;
        let u_norm = (p.utility - first.utility) / u_span;
        let elevation = u_norm - e_norm;
        match best {
            Some((_, b)) if b >= elevation => {}
            _ => best = Some((i, elevation)),
        }
    }
    // A knee must actually rise above the chord; a convex (bowed-down)
    // front has no knee.
    let (i, elevation) = best?;
    (elevation > 0.0).then_some((i, pts[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concave_front_has_interior_knee() {
        // utility = sqrt(energy): strongly concave, knee in the interior.
        let front = ParetoFront::from_points((1..=100).map(|e| ((e as f64).sqrt(), e as f64)));
        let (i, p) = knee_point(&front).expect("knee exists");
        assert!(i > 0 && i < front.len() - 1);
        // Analytic knee of sqrt on [1, 100] normalised: maximise
        // (sqrt(e)-1)/9 - (e-1)/99 → derivative zero at sqrt(e) = 99/18.
        let expect = (99.0f64 / 18.0).powi(2);
        assert!(
            (p.energy - expect).abs() < 1.0,
            "knee at {} expected ~{expect}",
            p.energy
        );
    }

    #[test]
    fn linear_front_has_no_strict_knee() {
        let front = ParetoFront::from_points((0..10).map(|i| (i as f64, i as f64)));
        // All elevations are exactly zero: no point rises above the chord.
        assert!(knee_point(&front).is_none());
    }

    #[test]
    fn convex_front_has_no_knee() {
        // utility = energy²: marginal utility *increases*, no knee.
        let front = ParetoFront::from_points((1..=50).map(|e| {
            let e = e as f64;
            (e * e, e)
        }));
        assert!(knee_point(&front).is_none());
    }

    #[test]
    fn tiny_fronts_yield_none() {
        assert!(knee_point(&ParetoFront::from_points([])).is_none());
        assert!(knee_point(&ParetoFront::from_points([(1.0, 1.0)])).is_none());
        assert!(knee_point(&ParetoFront::from_points([(1.0, 1.0), (2.0, 2.0)])).is_none());
    }

    #[test]
    fn knee_is_on_the_front() {
        let front = ParetoFront::from_points((1..=30).map(|e| {
            let e = e as f64;
            (100.0 * (1.0 - (-e / 8.0).exp()), e)
        }));
        let (i, p) = knee_point(&front).expect("saturating curve has a knee");
        assert_eq!(front.points()[i], p);
    }
}
