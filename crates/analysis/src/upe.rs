//! The Fig. 5 analysis: locating the region of a Pareto front where
//! *utility earned per energy spent* is maximised — "the location where the
//! system is operating as efficiently as possible".
//!
//! Subplot B of the paper plots UPE against utility, subplot C against
//! energy; the peaks of both identify the same front point, which is then
//! translated back onto the front (subplot A).

use crate::front::{FrontPoint, ParetoFront};
use serde::{Deserialize, Serialize};

/// Utility-per-energy analysis of one front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpeAnalysis {
    /// UPE value per front point (same order as the front: energy
    /// ascending).
    pub upe: Vec<f64>,
    /// Index of the peak-UPE point.
    pub peak_index: usize,
    /// The peak point itself.
    pub peak: FrontPoint,
    /// Peak utility-per-energy value.
    pub peak_upe: f64,
}

impl UpeAnalysis {
    /// Computes the UPE curve and peak of a front. Returns `None` for an
    /// empty front or one with only non-positive energies (impossible for
    /// real allocations).
    pub fn of(front: &ParetoFront) -> Option<Self> {
        if front.is_empty() {
            return None;
        }
        let upe: Vec<f64> = front
            .points()
            .iter()
            .map(|p| {
                if p.energy > 0.0 {
                    p.utility / p.energy
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let (peak_index, &peak_upe) = upe.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        if !peak_upe.is_finite() {
            return None;
        }
        Some(UpeAnalysis {
            peak: front.points()[peak_index],
            upe,
            peak_index,
            peak_upe,
        })
    }

    /// The "circled region" of the figures: all front indices whose UPE is
    /// within `tolerance` (relative) of the peak, e.g. 0.05 for 5 %.
    pub fn peak_region(&self, tolerance: f64) -> Vec<usize> {
        let cutoff = self.peak_upe * (1.0 - tolerance);
        self.upe
            .iter()
            .enumerate()
            .filter(|(_, &u)| u >= cutoff)
            .map(|(i, _)| i)
            .collect()
    }

    /// The (utility, UPE) series of subplot 5.B.
    pub fn upe_vs_utility(&self, front: &ParetoFront) -> Vec<(f64, f64)> {
        front
            .points()
            .iter()
            .zip(&self.upe)
            .map(|(p, &u)| (p.utility, u))
            .collect()
    }

    /// The (energy, UPE) series of subplot 5.C.
    pub fn upe_vs_energy(&self, front: &ParetoFront) -> Vec<(f64, f64)> {
        front
            .points()
            .iter()
            .zip(&self.upe)
            .map(|(p, &u)| (p.energy, u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic concave front: utility = √energy (diminishing returns),
    /// over energies 1..=100. UPE = 1/√e is maximised at the lowest energy.
    fn concave_front() -> ParetoFront {
        ParetoFront::from_points((1..=100).map(|e| ((e as f64).sqrt(), e as f64)))
    }

    /// A front with an interior efficiency peak: slow start, steep middle,
    /// saturating end (logistic-ish) — the shape the paper's figures show.
    fn s_front() -> ParetoFront {
        ParetoFront::from_points((1..=100).map(|i| {
            let e = i as f64;
            let u = 100.0 / (1.0 + (-(e - 30.0) / 4.0).exp());
            (u, e)
        }))
    }

    #[test]
    fn concave_front_peaks_at_min_energy() {
        let front = concave_front();
        let a = UpeAnalysis::of(&front).unwrap();
        assert_eq!(a.peak_index, 0);
        assert_eq!(a.peak.energy, 1.0);
    }

    #[test]
    fn s_front_peak_is_interior() {
        let front = s_front();
        let a = UpeAnalysis::of(&front).unwrap();
        assert!(a.peak_index > 0 && a.peak_index < front.len() - 1);
        // For u(e) = 100/(1+exp(-(e-30)/4)), u/e peaks a little past the
        // inflection point; verify by brute force against the curve.
        let brute = (1..=100)
            .map(|i| {
                let e = i as f64;
                (100.0 / (1.0 + (-(e - 30.0) / 4.0).exp())) / e
            })
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(a.peak_index, brute);
    }

    #[test]
    fn peak_region_contains_peak_and_respects_tolerance() {
        let front = s_front();
        let a = UpeAnalysis::of(&front).unwrap();
        let region = a.peak_region(0.05);
        assert!(region.contains(&a.peak_index));
        for &i in &region {
            assert!(a.upe[i] >= a.peak_upe * 0.95 - 1e-12);
        }
        // Zero tolerance shrinks the region to the peak (ties aside).
        let tight = a.peak_region(0.0);
        assert!(tight.contains(&a.peak_index));
        assert!(tight.len() <= region.len());
    }

    #[test]
    fn subplot_series_align_with_front() {
        let front = s_front();
        let a = UpeAnalysis::of(&front).unwrap();
        let by_u = a.upe_vs_utility(&front);
        let by_e = a.upe_vs_energy(&front);
        assert_eq!(by_u.len(), front.len());
        assert_eq!(by_e.len(), front.len());
        // The peak of both series is the same UPE value (the paper's solid
        // and dashed lines meet the same front point).
        let max_u = by_u
            .iter()
            .map(|&(_, u)| u)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_e = by_e
            .iter()
            .map(|&(_, u)| u)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max_u, a.peak_upe);
        assert_eq!(max_e, a.peak_upe);
    }

    #[test]
    fn empty_front_yields_none() {
        let empty = ParetoFront::from_points(std::iter::empty());
        assert!(UpeAnalysis::of(&empty).is_none());
    }

    #[test]
    fn single_point_front() {
        let front = ParetoFront::from_points([(10.0, 2.0)]);
        let a = UpeAnalysis::of(&front).unwrap();
        assert_eq!(a.peak_upe, 5.0);
        assert_eq!(a.peak_index, 0);
    }
}
