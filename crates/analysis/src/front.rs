//! Pareto fronts in (utility ↑, energy ↓) space.

use serde::{Deserialize, Serialize};

/// One resource allocation's objective values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Total utility earned (maximised).
    pub utility: f64,
    /// Total energy consumed (minimised).
    pub energy: f64,
}

impl FrontPoint {
    /// Whether `self` dominates `other` (≥ utility, ≤ energy, strict in one).
    #[inline]
    pub fn dominates(&self, other: &FrontPoint) -> bool {
        (self.utility >= other.utility && self.energy <= other.energy)
            && (self.utility > other.utility || self.energy < other.energy)
    }
}

/// A nondominated set, stored sorted by ascending energy. Along a valid
/// front utility is then non-decreasing (spending more energy can only buy
/// more utility — otherwise the point would be dominated).
///
/// ```
/// use hetsched_analysis::ParetoFront;
///
/// // (utility, energy): the middle point is dominated by the first.
/// let front = ParetoFront::from_points([(10.0, 3.0), (8.0, 4.0), (15.0, 9.0)]);
/// assert_eq!(front.len(), 2);
/// assert_eq!(front.min_energy().unwrap().energy, 3.0);
/// assert_eq!(front.max_utility().unwrap().utility, 15.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// Builds a front from arbitrary points: filters to the nondominated
    /// subset, deduplicates, and sorts by energy.
    pub fn from_points(points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let candidates: Vec<FrontPoint> = points
            .into_iter()
            .map(|(utility, energy)| FrontPoint { utility, energy })
            .collect();
        let mut kept: Vec<FrontPoint> = Vec::new();
        'outer: for (i, p) in candidates.iter().enumerate() {
            for (j, q) in candidates.iter().enumerate() {
                if q.dominates(p) || (j < i && q == p) {
                    continue 'outer;
                }
            }
            kept.push(*p);
        }
        kept.sort_by(|a, b| {
            a.energy
                .total_cmp(&b.energy)
                .then(a.utility.total_cmp(&b.utility))
        });
        ParetoFront { points: kept }
    }

    /// Builds a front from engine objectives `[-utility, energy]`.
    pub fn from_objectives<'a>(objectives: impl IntoIterator<Item = &'a [f64; 2]>) -> Self {
        ParetoFront::from_points(objectives.into_iter().map(|o| (-o[0], o[1])))
    }

    /// The points, ascending in energy (and utility).
    #[inline]
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// Number of nondominated points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The minimum-energy end of the front.
    pub fn min_energy(&self) -> Option<FrontPoint> {
        self.points.first().copied()
    }

    /// The maximum-utility end of the front.
    pub fn max_utility(&self) -> Option<FrontPoint> {
        self.points.last().copied()
    }

    /// Merges two fronts into the nondominated union — used to accumulate a
    /// best-known reference front across many runs.
    pub fn merge(&self, other: &ParetoFront) -> ParetoFront {
        ParetoFront::from_points(
            self.points
                .iter()
                .chain(&other.points)
                .map(|p| (p.utility, p.energy)),
        )
    }

    /// Fraction of `other`'s points that are dominated by some point of
    /// `self` — the two-set coverage metric C(self, other) of Zitzler &
    /// Thiele. 1.0 means `self` completely covers `other`.
    pub fn coverage_of(&self, other: &ParetoFront) -> f64 {
        if other.is_empty() {
            return 0.0;
        }
        let covered = other
            .points
            .iter()
            .filter(|q| self.points.iter().any(|p| p.dominates(q)))
            .count();
        covered as f64 / other.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_dominated_points() {
        // (utility, energy): B=(6,7) dominated by A=(8,5); C=(4,3) trades off.
        let front = ParetoFront::from_points([(8.0, 5.0), (6.0, 7.0), (4.0, 3.0)]);
        assert_eq!(front.len(), 2);
        assert_eq!(
            front.points()[0],
            FrontPoint {
                utility: 4.0,
                energy: 3.0
            }
        );
        assert_eq!(
            front.points()[1],
            FrontPoint {
                utility: 8.0,
                energy: 5.0
            }
        );
    }

    #[test]
    fn utility_non_decreasing_along_front() {
        let raw: Vec<(f64, f64)> = (0..100)
            .map(|i| ((i * 37 % 41) as f64, (i * 17 % 43) as f64))
            .collect();
        let front = ParetoFront::from_points(raw);
        for w in front.points().windows(2) {
            assert!(w[0].energy <= w[1].energy);
            assert!(w[0].utility <= w[1].utility);
        }
    }

    #[test]
    fn duplicates_collapse_to_one() {
        let front = ParetoFront::from_points([(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn from_objectives_negates_utility() {
        let objs = [[-10.0, 3.0], [-5.0, 1.0]];
        let front = ParetoFront::from_objectives(objs.iter());
        assert_eq!(front.len(), 2);
        assert_eq!(front.max_utility().unwrap().utility, 10.0);
        assert_eq!(front.min_energy().unwrap().energy, 1.0);
    }

    #[test]
    fn empty_front() {
        let front = ParetoFront::from_points(std::iter::empty());
        assert!(front.is_empty());
        assert!(front.min_energy().is_none());
        assert!(front.max_utility().is_none());
    }

    #[test]
    fn merge_keeps_union_nondominated() {
        let a = ParetoFront::from_points([(10.0, 10.0), (5.0, 4.0)]);
        let b = ParetoFront::from_points([(11.0, 10.0), (2.0, 1.0)]);
        let m = a.merge(&b);
        // (10,10) dominated by (11,10); rest survive.
        assert_eq!(m.len(), 3);
        assert!(m.points().iter().all(|p| p.utility != 10.0));
    }

    #[test]
    fn coverage_metric() {
        let strong = ParetoFront::from_points([(10.0, 1.0)]);
        let weak = ParetoFront::from_points([(5.0, 2.0), (4.0, 1.5)]);
        assert_eq!(strong.coverage_of(&weak), 1.0);
        assert_eq!(weak.coverage_of(&strong), 0.0);
        assert_eq!(
            strong.coverage_of(&ParetoFront::from_points(std::iter::empty())),
            0.0
        );
    }

    #[test]
    fn point_dominance_rules() {
        let a = FrontPoint {
            utility: 5.0,
            energy: 3.0,
        };
        let b = FrontPoint {
            utility: 5.0,
            energy: 4.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
    }
}
