//! Quantitative front-comparison metrics, used by the seeding-comparison
//! experiments ("our seeded populations are finding solutions that dominate
//! those found by the random population") and the ablation benches.

use crate::front::ParetoFront;

/// 2-D hypervolume of a front in (utility ↑, energy ↓) space relative to a
/// reference point `(ref_utility, ref_energy)` that every front point must
/// dominate (`utility ≥ ref_utility`, `energy ≤ ref_energy`); points that
/// do not are ignored. Larger is better.
///
/// Computed as the area of the union of rectangles
/// `[ref_utility, uᵢ] × [eᵢ, ref_energy]`, swept in ascending energy.
pub fn hypervolume(front: &ParetoFront, ref_utility: f64, ref_energy: f64) -> f64 {
    let mut area = 0.0;
    let mut prev_utility = ref_utility;
    for p in front.points() {
        // points() ascends in energy and utility.
        if p.utility < ref_utility || p.energy > ref_energy {
            continue;
        }
        if p.utility > prev_utility {
            area += (p.utility - prev_utility) * (ref_energy - p.energy);
            prev_utility = p.utility;
        }
    }
    area
}

/// Generational distance: average Euclidean distance from each point of
/// `front` to its nearest neighbour on `reference` (the best-known front).
/// Zero means `front` lies on the reference. Objectives should be on
/// comparable scales; pass `(utility_scale, energy_scale)` to normalise.
pub fn generational_distance(
    front: &ParetoFront,
    reference: &ParetoFront,
    scales: (f64, f64),
) -> f64 {
    if front.is_empty() || reference.is_empty() {
        return f64::INFINITY;
    }
    let (us, es) = scales;
    let sum: f64 = front
        .points()
        .iter()
        .map(|p| {
            reference
                .points()
                .iter()
                .map(|r| {
                    let du = (p.utility - r.utility) / us;
                    let de = (p.energy - r.energy) / es;
                    (du * du + de * de).sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    sum / front.len() as f64
}

/// Additive ε-indicator: the smallest `ε ≥ 0` such that shifting every
/// point of `front` by `ε` toward better (utility + ε, energy − ε) makes it
/// weakly dominate every point of `reference`. Zero means `front` already
/// covers the reference; larger = worse. Objectives should be pre-scaled to
/// comparable units by the caller (pass `scales` as for
/// [`generational_distance`]).
pub fn epsilon_indicator(front: &ParetoFront, reference: &ParetoFront, scales: (f64, f64)) -> f64 {
    if reference.is_empty() {
        return 0.0;
    }
    if front.is_empty() {
        return f64::INFINITY;
    }
    let (us, es) = scales;
    reference
        .points()
        .iter()
        .map(|r| {
            // ε needed for the best point of `front` against r.
            front
                .points()
                .iter()
                .map(|p| {
                    let need_u = (r.utility - p.utility) / us; // >0 if p earns less
                    let need_e = (p.energy - r.energy) / es; // >0 if p spends more
                    need_u.max(need_e).max(0.0)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max)
}

/// Deb's spread indicator Δ: how evenly the front's points are distributed.
/// 0 is perfectly even; values near 1 indicate heavy clustering. Needs at
/// least three points (returns 0 otherwise — a two-point front is trivially
/// "even").
pub fn spread(front: &ParetoFront) -> f64 {
    let pts = front.points();
    if pts.len() < 3 {
        return 0.0;
    }
    // Consecutive gaps in normalised objective space.
    let u_span = (pts.last().unwrap().utility - pts[0].utility).max(1e-300);
    let e_span = (pts.last().unwrap().energy - pts[0].energy).max(1e-300);
    let gaps: Vec<f64> = pts
        .windows(2)
        .map(|w| {
            let du = (w[1].utility - w[0].utility) / u_span;
            let de = (w[1].energy - w[0].energy) / e_span;
            (du * du + de * de).sqrt()
        })
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    gaps.iter().map(|g| (g - mean).abs()).sum::<f64>() / (gaps.len() as f64 * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypervolume_of_single_point() {
        let front = ParetoFront::from_points([(10.0, 4.0)]);
        // Rectangle [0,10] x [4,20] = 10 * 16.
        assert_eq!(hypervolume(&front, 0.0, 20.0), 160.0);
    }

    #[test]
    fn hypervolume_of_staircase() {
        // Points (4,2) and (10,8) vs ref (0, 10):
        // (4-0)*(10-2) + (10-4)*(10-8) = 32 + 12 = 44.
        let front = ParetoFront::from_points([(4.0, 2.0), (10.0, 8.0)]);
        assert_eq!(hypervolume(&front, 0.0, 10.0), 44.0);
    }

    #[test]
    fn hypervolume_ignores_points_outside_reference() {
        let front = ParetoFront::from_points([(4.0, 2.0), (10.0, 12.0)]);
        // Second point has energy above the reference: contributes nothing.
        assert_eq!(hypervolume(&front, 0.0, 10.0), 32.0);
        // Empty front has zero volume.
        assert_eq!(hypervolume(&ParetoFront::from_points([]), 0.0, 10.0), 0.0);
    }

    #[test]
    fn dominating_front_has_larger_hypervolume() {
        let strong = ParetoFront::from_points([(8.0, 2.0), (12.0, 5.0)]);
        let weak = ParetoFront::from_points([(6.0, 3.0), (10.0, 6.0)]);
        let hv_s = hypervolume(&strong, 0.0, 10.0);
        let hv_w = hypervolume(&weak, 0.0, 10.0);
        assert!(hv_s > hv_w);
    }

    #[test]
    fn gd_zero_on_reference_itself() {
        let f = ParetoFront::from_points([(1.0, 1.0), (2.0, 3.0), (5.0, 8.0)]);
        assert_eq!(generational_distance(&f, &f, (1.0, 1.0)), 0.0);
    }

    #[test]
    fn gd_measures_offset() {
        let reference = ParetoFront::from_points([(0.0, 0.0)]);
        let off = ParetoFront::from_points([(3.0, 4.0)]);
        assert!((generational_distance(&off, &reference, (1.0, 1.0)) - 5.0).abs() < 1e-12);
        // Scales normalise the distance.
        assert!(
            (generational_distance(&off, &reference, (3.0, 4.0)) - 2.0f64.sqrt()).abs() < 1e-12
        );
    }

    #[test]
    fn gd_of_empty_front_is_infinite() {
        let empty = ParetoFront::from_points([]);
        let f = ParetoFront::from_points([(1.0, 1.0)]);
        assert!(generational_distance(&empty, &f, (1.0, 1.0)).is_infinite());
        assert!(generational_distance(&f, &empty, (1.0, 1.0)).is_infinite());
    }

    #[test]
    fn epsilon_zero_when_front_covers_reference() {
        let strong = ParetoFront::from_points([(10.0, 1.0), (20.0, 5.0)]);
        let weak = ParetoFront::from_points([(9.0, 2.0), (18.0, 6.0)]);
        assert_eq!(epsilon_indicator(&strong, &weak, (1.0, 1.0)), 0.0);
        // The weak front needs a positive shift to cover the strong one.
        assert!(epsilon_indicator(&weak, &strong, (1.0, 1.0)) > 0.0);
    }

    #[test]
    fn epsilon_measures_exact_gap() {
        let a = ParetoFront::from_points([(5.0, 5.0)]);
        let b = ParetoFront::from_points([(7.0, 5.0)]);
        // a needs +2 utility to cover b.
        assert!((epsilon_indicator(&a, &b, (1.0, 1.0)) - 2.0).abs() < 1e-12);
        // Scaling utility by 2 halves the needed ε.
        assert!((epsilon_indicator(&a, &b, (2.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_edge_cases() {
        let f = ParetoFront::from_points([(1.0, 1.0)]);
        let empty = ParetoFront::from_points([]);
        assert_eq!(epsilon_indicator(&f, &empty, (1.0, 1.0)), 0.0);
        assert!(epsilon_indicator(&empty, &f, (1.0, 1.0)).is_infinite());
    }

    #[test]
    fn spread_zero_for_even_front() {
        let even = ParetoFront::from_points((0..10).map(|i| (i as f64, i as f64)));
        assert!(spread(&even) < 1e-12);
    }

    #[test]
    fn spread_larger_for_clustered_front() {
        let clustered =
            ParetoFront::from_points([(0.0, 0.0), (0.1, 0.1), (0.2, 0.2), (10.0, 10.0)]);
        let even = ParetoFront::from_points((0..4).map(|i| (i as f64, i as f64)));
        assert!(spread(&clustered) > spread(&even));
    }

    #[test]
    fn spread_of_tiny_fronts_is_zero() {
        assert_eq!(spread(&ParetoFront::from_points([(1.0, 1.0)])), 0.0);
        assert_eq!(
            spread(&ParetoFront::from_points([(1.0, 1.0), (2.0, 2.0)])),
            0.0
        );
    }
}
