//! Task traces (§III-C, §V-A).
//!
//! A trace records every task that arrived in a fixed window — its type,
//! arrival time, and TUF — making the allocation problem *static*: all
//! information is known a priori, as in the paper's post-mortem analysis.

use crate::policy::TufPolicy;
use crate::tuf::Tuf;
use crate::{Result, WorkloadError};
use hetsched_data::TaskTypeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a task within a trace. Task ids are assigned in arrival
/// order, so `TaskId(i)` is the i-th task to arrive — the convention the
/// chromosome encoding relies on ("the ith gene in every chromosome
/// corresponds to the ith task ordered based on task arrival times").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Zero-based index into the trace.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Trace-wide identifier (arrival rank).
    pub id: TaskId,
    /// The task's type (ETC/EPC row).
    pub task_type: TaskTypeId,
    /// Arrival time in seconds from the start of the window.
    pub arrival: f64,
    /// The task's time-utility function.
    pub tuf: Tuf,
}

/// A complete trace over a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    tasks: Vec<Task>,
    /// Window length in seconds.
    duration: f64,
}

impl Trace {
    /// Builds a trace from tasks, sorting by arrival and re-assigning ids in
    /// arrival order.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidTrace`] for an empty task list, non-positive
    /// duration, or arrivals outside `[0, duration]`.
    pub fn new(mut tasks: Vec<Task>, duration: f64) -> Result<Self> {
        if tasks.is_empty() {
            return Err(WorkloadError::InvalidTrace("no tasks"));
        }
        if !(duration.is_finite() && duration > 0.0) {
            return Err(WorkloadError::InvalidTrace(
                "duration must be finite and > 0",
            ));
        }
        if tasks
            .iter()
            .any(|t| !t.arrival.is_finite() || t.arrival < 0.0 || t.arrival > duration)
        {
            return Err(WorkloadError::InvalidTrace("arrival outside [0, duration]"));
        }
        tasks.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        for (i, t) in tasks.iter_mut().enumerate() {
            t.id = TaskId(i as u32);
        }
        Ok(Trace { tasks, duration })
    }

    /// The tasks, sorted by arrival time.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks (the chromosome length `T`).
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the trace is empty (never true for a validated trace).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Window length in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Task by id.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Upper bound on total utility: every task earns its full priority.
    pub fn max_possible_utility(&self) -> f64 {
        self.tasks.iter().map(|t| t.tuf.priority()).sum()
    }

    /// Restores derived TUF state after serde deserialisation.
    pub fn after_deserialize(mut self) -> Self {
        for t in &mut self.tasks {
            let tuf = std::mem::replace(&mut t.tuf, Tuf::constant(1.0));
            t.tuf = tuf.after_deserialize();
        }
        self
    }
}

/// Arrival-time processes for synthetic traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A Poisson process conditioned on the task count: arrivals are i.i.d.
    /// uniform over the window (order statistics property). The paper's
    /// "tasks arrive dynamically throughout the day" default.
    PoissonConditioned,
    /// Evenly spaced arrivals (deterministic, useful for tests).
    Even,
    /// `bursts` equally-spaced bursts; tasks cluster near burst centres
    /// with the given spread (seconds). Models diurnal submission spikes.
    Bursty {
        /// Number of bursts in the window.
        bursts: u8,
        /// Gaussian spread of each burst (seconds).
        spread: f64,
    },
    /// A smoothly varying intensity `λ(t) ∝ 1 + amplitude·sin²(πt/T)`
    /// sampled by thinning — a single work-day hump (quiet edges, busy
    /// middle) without the hard clustering of [`ArrivalProcess::Bursty`].
    Diurnal {
        /// Peak-to-trough intensity ratio minus one (0 = uniform).
        amplitude: f64,
    },
}

/// Generator for synthetic traces against a system with `task_types` types.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Window length in seconds (paper: 900 s or 3600 s).
    pub duration: f64,
    /// Number of task types to draw from.
    pub task_types: usize,
    /// Optional relative weight per task type (uniform when `None`; length
    /// must equal `task_types` and weights must be non-negative with a
    /// positive sum).
    pub type_weights: Option<Vec<f64>>,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// TUF policy.
    pub policy: TufPolicy,
}

impl TraceGenerator {
    /// Convenience constructor with uniform type mix, Poisson arrivals, and
    /// the default ESSC policy.
    pub fn new(tasks: usize, duration: f64, task_types: usize) -> Self {
        TraceGenerator {
            tasks,
            duration,
            task_types,
            type_weights: None,
            arrivals: ArrivalProcess::PoissonConditioned,
            policy: TufPolicy::essc_default(),
        }
    }

    /// Generates a trace.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidTrace`] when `tasks == 0`, `task_types == 0`,
    /// or the duration is invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Trace> {
        if self.tasks == 0 {
            return Err(WorkloadError::InvalidTrace("tasks must be > 0"));
        }
        if self.task_types == 0 {
            return Err(WorkloadError::InvalidTrace("task_types must be > 0"));
        }
        if let Some(w) = &self.type_weights {
            if w.len() != self.task_types {
                return Err(WorkloadError::InvalidTrace("type_weights length mismatch"));
            }
            if w.iter().any(|&x| !x.is_finite() || x < 0.0) || w.iter().sum::<f64>() <= 0.0 {
                return Err(WorkloadError::InvalidTrace(
                    "type_weights must be non-negative with a positive sum",
                ));
            }
        }
        let mut tasks = Vec::with_capacity(self.tasks);
        for i in 0..self.tasks {
            let arrival = match self.arrivals {
                ArrivalProcess::PoissonConditioned => rng.gen::<f64>() * self.duration,
                ArrivalProcess::Even => self.duration * (i as f64 + 0.5) / self.tasks as f64,
                ArrivalProcess::Bursty { bursts, spread } => {
                    let b = rng.gen_range(0..bursts.max(1)) as f64;
                    let centre = self.duration * (b + 0.5) / bursts.max(1) as f64;
                    // Box-Muller normal around the burst centre.
                    let (u1, u2) = (rng.gen::<f64>().max(1e-12), rng.gen::<f64>());
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (centre + z * spread).clamp(0.0, self.duration)
                }
                ArrivalProcess::Diurnal { amplitude } => {
                    // Thinning against the max intensity 1 + amplitude.
                    let amplitude = amplitude.max(0.0);
                    loop {
                        let t = rng.gen::<f64>() * self.duration;
                        let s = (std::f64::consts::PI * t / self.duration).sin();
                        let intensity = 1.0 + amplitude * s * s;
                        if rng.gen::<f64>() * (1.0 + amplitude) <= intensity {
                            break t;
                        }
                    }
                }
            };
            let task_type = match &self.type_weights {
                None => TaskTypeId(rng.gen_range(0..self.task_types) as u16),
                Some(weights) => {
                    let total: f64 = weights.iter().sum();
                    let mut u = rng.gen::<f64>() * total;
                    let mut chosen = self.task_types - 1;
                    for (t, &w) in weights.iter().enumerate() {
                        if u < w {
                            chosen = t;
                            break;
                        }
                        u -= w;
                    }
                    TaskTypeId(chosen as u16)
                }
            };
            tasks.push(Task {
                id: TaskId(i as u32),
                task_type,
                arrival,
                tuf: self.policy.draw(rng),
            });
        }
        Trace::new(tasks, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(n: usize, proc_: ArrivalProcess) -> Trace {
        let mut g = TraceGenerator::new(n, 900.0, 5);
        g.arrivals = proc_;
        g.generate(&mut StdRng::seed_from_u64(11)).unwrap()
    }

    #[test]
    fn tasks_sorted_by_arrival_with_rank_ids() {
        let trace = gen(250, ArrivalProcess::PoissonConditioned);
        assert_eq!(trace.len(), 250);
        for (i, w) in trace.tasks().windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, t) in trace.tasks().iter().enumerate() {
            assert_eq!(t.id, TaskId(i as u32));
        }
    }

    #[test]
    fn arrivals_inside_window() {
        for p in [
            ArrivalProcess::PoissonConditioned,
            ArrivalProcess::Even,
            ArrivalProcess::Bursty {
                bursts: 3,
                spread: 60.0,
            },
            ArrivalProcess::Diurnal { amplitude: 4.0 },
        ] {
            let trace = gen(100, p);
            for t in trace.tasks() {
                assert!((0.0..=900.0).contains(&t.arrival));
            }
        }
    }

    #[test]
    fn even_arrivals_are_equally_spaced() {
        let trace = gen(9, ArrivalProcess::Even);
        let gaps: Vec<f64> = trace
            .tasks()
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        for g in gaps {
            assert!((g - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn task_types_cover_range() {
        let trace = gen(500, ArrivalProcess::PoissonConditioned);
        let mut seen = [false; 5];
        for t in trace.tasks() {
            assert!(t.task_type.index() < 5);
            seen[t.task_type.index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 5 task types should appear in 500 draws"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = TraceGenerator::new(50, 900.0, 5);
        let a = g.generate(&mut StdRng::seed_from_u64(99)).unwrap();
        let b = g.generate(&mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(a, b);
        let c = g.generate(&mut StdRng::seed_from_u64(100)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(TraceGenerator::new(0, 900.0, 5).generate(&mut rng).is_err());
        assert!(TraceGenerator::new(10, 900.0, 0)
            .generate(&mut rng)
            .is_err());
        assert!(TraceGenerator::new(10, 0.0, 5).generate(&mut rng).is_err());
    }

    #[test]
    fn diurnal_arrivals_concentrate_mid_window() {
        let trace = gen(4000, ArrivalProcess::Diurnal { amplitude: 6.0 });
        let mid = trace
            .tasks()
            .iter()
            .filter(|t| (300.0..600.0).contains(&t.arrival))
            .count() as f64;
        let edge = trace
            .tasks()
            .iter()
            .filter(|t| t.arrival < 150.0 || t.arrival > 750.0)
            .count() as f64;
        // Middle third should be far denser than the outer sixths combined.
        assert!(mid > 1.5 * edge, "mid {mid} vs edge {edge}");
    }

    #[test]
    fn weighted_mix_respects_weights() {
        let mut g = TraceGenerator::new(6000, 900.0, 3);
        g.type_weights = Some(vec![0.0, 3.0, 1.0]);
        let trace = g.generate(&mut StdRng::seed_from_u64(5)).unwrap();
        let mut counts = [0usize; 3];
        for t in trace.tasks() {
            counts[t.task_type.index()] += 1;
        }
        assert_eq!(counts[0], 0, "zero-weight type must never appear");
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "3:1 mix expected, got {ratio}");
    }

    #[test]
    fn invalid_weights_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = TraceGenerator::new(10, 900.0, 3);
        g.type_weights = Some(vec![1.0, 1.0]); // wrong length
        assert!(g.generate(&mut rng).is_err());
        g.type_weights = Some(vec![0.0, 0.0, 0.0]); // zero sum
        assert!(g.generate(&mut rng).is_err());
        g.type_weights = Some(vec![1.0, -1.0, 1.0]); // negative
        assert!(g.generate(&mut rng).is_err());
    }

    #[test]
    fn trace_new_validates_arrivals() {
        let g = TraceGenerator::new(3, 900.0, 2);
        let trace = g.generate(&mut StdRng::seed_from_u64(1)).unwrap();
        let mut tasks = trace.tasks().to_vec();
        tasks[0].arrival = -1.0;
        assert!(Trace::new(tasks.clone(), 900.0).is_err());
        tasks[0].arrival = 901.0;
        assert!(Trace::new(tasks, 900.0).is_err());
        assert!(Trace::new(vec![], 900.0).is_err());
    }

    #[test]
    fn max_possible_utility_sums_priorities() {
        let trace = gen(100, ArrivalProcess::Even);
        let sum: f64 = trace.tasks().iter().map(|t| t.tuf.priority()).sum();
        assert_eq!(trace.max_possible_utility(), sum);
        assert!(sum > 0.0);
    }

    #[test]
    fn serde_roundtrip_preserves_utilities() {
        let trace = gen(20, ArrivalProcess::PoissonConditioned);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        let back = back.after_deserialize();
        for (a, b) in trace.tasks().iter().zip(back.tasks()) {
            assert_eq!(a.id, b.id);
            assert!((a.tuf.utility(123.0) - b.tuf.utility(123.0)).abs() < 1e-12);
        }
    }
}
