//! TUF assignment policy (§IV-B1: "The value of these parameters in an
//! actual system are determined by system administrators ... and are policy
//! decisions that can be adjusted as needed").
//!
//! A [`TufPolicy`] draws a complete TUF for each task: a priority tier
//! (how important the task is), a base urgency (how fast its value decays),
//! and a characteristic-class template. The default policy mirrors the
//! three-tier priority structure of the ESSC companion paper (HCW 2011):
//! a small fraction of high-priority tasks, a middle band, and a bulk of
//! routine work, each with soft-deadline TUFs shaped like the paper's Fig. 1.

use crate::tuf::{Tuf, TufBuilder, UtilityClass};
use crate::{Result, WorkloadError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One priority tier of the policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityTier {
    /// Relative weight of this tier when drawing tasks.
    pub weight: f64,
    /// Priority (maximum utility) assigned to tasks of this tier.
    pub priority: f64,
    /// Base urgency (decay rate, 1/s) for this tier.
    pub urgency: f64,
}

/// Administrator policy generating per-task TUFs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TufPolicy {
    tiers: Vec<PriorityTier>,
    /// Class template scaled per tier: `(duration_s, begin, end, modifier)`.
    classes: Vec<UtilityClass>,
    /// Utility fraction after the last class.
    final_fraction: f64,
}

impl TufPolicy {
    /// Builds a policy from explicit tiers and a class template.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidTuf`] for empty/invalid tiers, and the
    /// template itself is validated by constructing a probe TUF.
    pub fn new(
        tiers: Vec<PriorityTier>,
        classes: Vec<UtilityClass>,
        final_fraction: f64,
    ) -> Result<Self> {
        if tiers.is_empty() {
            return Err(WorkloadError::InvalidTuf("policy needs at least one tier"));
        }
        for t in &tiers {
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(WorkloadError::InvalidTuf("tier weight must be > 0"));
            }
            if !(t.priority.is_finite() && t.priority > 0.0) {
                return Err(WorkloadError::InvalidTuf("tier priority must be > 0"));
            }
            if !(t.urgency.is_finite() && t.urgency >= 0.0) {
                return Err(WorkloadError::InvalidTuf("tier urgency must be >= 0"));
            }
        }
        let policy = TufPolicy {
            tiers,
            classes,
            final_fraction,
        };
        // Probe-build one TUF per tier so an invalid template fails fast.
        for i in 0..policy.tiers.len() {
            policy.build_tuf(i)?;
        }
        Ok(policy)
    }

    /// The ESSC-flavoured default: 10 % high-priority (P=8, urgent),
    /// 30 % medium (P=4), 60 % routine (P=1), each with a Fig.-1-like
    /// three-class soft deadline. Durations are tuned so utility decay is
    /// material within the paper's 15-minute traces.
    pub fn essc_default() -> Self {
        TufPolicy::new(
            vec![
                PriorityTier {
                    weight: 0.1,
                    priority: 8.0,
                    urgency: 0.004,
                },
                PriorityTier {
                    weight: 0.3,
                    priority: 4.0,
                    urgency: 0.002,
                },
                PriorityTier {
                    weight: 0.6,
                    priority: 1.0,
                    urgency: 0.001,
                },
            ],
            vec![
                UtilityClass {
                    duration: 300.0,
                    begin_fraction: 1.0,
                    end_fraction: 0.6,
                    urgency_modifier: 1.0,
                },
                UtilityClass {
                    duration: 600.0,
                    begin_fraction: 0.6,
                    end_fraction: 0.2,
                    urgency_modifier: 2.0,
                },
                UtilityClass {
                    duration: 900.0,
                    begin_fraction: 0.2,
                    end_fraction: 0.0,
                    urgency_modifier: 4.0,
                },
            ],
            0.0,
        )
        .expect("default policy is valid")
    }

    /// Number of tiers.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Tier definitions.
    pub fn tiers(&self) -> &[PriorityTier] {
        &self.tiers
    }

    fn build_tuf(&self, tier: usize) -> Result<Tuf> {
        let t = &self.tiers[tier];
        let mut b = TufBuilder::new(t.priority).urgency(t.urgency);
        for c in &self.classes {
            b = b.class(*c);
        }
        b.final_fraction(self.final_fraction).build()
    }

    /// Draws a TUF for one task.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Tuf {
        let total: f64 = self.tiers.iter().map(|t| t.weight).sum();
        let mut u = rng.gen::<f64>() * total;
        let mut idx = self.tiers.len() - 1;
        for (i, t) in self.tiers.iter().enumerate() {
            if u < t.weight {
                idx = i;
                break;
            }
            u -= t.weight;
        }
        self.build_tuf(idx)
            .expect("policy was validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_policy_draws_valid_tufs() {
        let policy = TufPolicy::essc_default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let tuf = policy.draw(&mut rng);
            assert!(tuf.priority() > 0.0);
            assert!(tuf.utility(0.0) > 0.0);
            assert_eq!(tuf.utility(1e9), 0.0);
        }
    }

    #[test]
    fn tier_frequencies_match_weights() {
        let policy = TufPolicy::essc_default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut high = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if policy.draw(&mut rng).priority() == 8.0 {
                high += 1;
            }
        }
        let frac = high as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "high-tier fraction {frac}");
    }

    #[test]
    fn rejects_empty_and_invalid_tiers() {
        assert!(TufPolicy::new(vec![], vec![], 0.0).is_err());
        let bad = PriorityTier {
            weight: 0.0,
            priority: 1.0,
            urgency: 0.1,
        };
        assert!(TufPolicy::new(vec![bad], vec![], 0.0).is_err());
        let bad = PriorityTier {
            weight: 1.0,
            priority: -1.0,
            urgency: 0.1,
        };
        assert!(TufPolicy::new(vec![bad], vec![], 0.0).is_err());
    }

    #[test]
    fn invalid_class_template_fails_fast() {
        let tier = PriorityTier {
            weight: 1.0,
            priority: 1.0,
            urgency: 0.1,
        };
        let bad_class = UtilityClass {
            duration: -1.0,
            begin_fraction: 1.0,
            end_fraction: 0.0,
            urgency_modifier: 1.0,
        };
        assert!(TufPolicy::new(vec![tier], vec![bad_class], 0.0).is_err());
    }

    #[test]
    fn single_tier_policy_is_deterministic_in_priority() {
        let tier = PriorityTier {
            weight: 1.0,
            priority: 5.0,
            urgency: 0.01,
        };
        let policy = TufPolicy::new(vec![tier], vec![], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(policy.draw(&mut rng).priority(), 5.0);
        }
    }
}
