//! Seeded streaming arrival processes for the online pipeline.
//!
//! The offline [`TraceGenerator`](crate::TraceGenerator) draws a whole
//! window at once; a rolling-horizon scheduler instead consumes arrivals
//! *incrementally* and must be able to regenerate any window of the stream
//! bit-identically (for resume after a crash, and for the differential
//! tests that replay a stream against its offline equivalent). This module
//! provides that: a Poisson process with an optional periodic burst
//! overlay, sampled **per one-second bin** from an RNG keyed on
//! `(seed, bin index)` so that
//!
//! * the same `(spec, seed)` always produces the identical stream, and
//! * arrivals over `[a, b)` followed by arrivals over `[b, c)` are exactly
//!   the arrivals over `[a, c)` — windows compose with no shared cursor.
//!
//! # Grammar
//!
//! Specs parse from the CLI/serve surface syntax:
//!
//! ```text
//! poisson:<rate>                  # rate in tasks/second
//! poisson:<rate>,burst:<factor>x<period>
//! ```
//!
//! With a burst clause, the intensity during the first second of every
//! `period`-second cycle is `rate × factor` (evaluated at bin granularity),
//! modelling periodic load spikes.

use crate::policy::TufPolicy;
use crate::trace::{Task, TaskId};
use crate::{Result, WorkloadError};
use hetsched_data::TaskTypeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// Sampling bin width in seconds. Each bin is drawn from its own RNG
/// stream, which is what makes disjoint windows compose exactly.
pub const BIN_SECONDS: f64 = 1.0;

/// Upper bound on the effective intensity (rate × burst factor) in
/// tasks/second: Knuth's Poisson sampler computes `exp(-λ)`, which
/// underflows (and would loop forever) for λ ≳ 700.
pub const MAX_RATE: f64 = 500.0;

/// Periodic burst overlay: the first second of every `period`-second
/// cycle runs at `rate × factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Intensity multiplier during the burst second (≥ 1).
    pub factor: f64,
    /// Cycle length in seconds (≥ 2 so burst and baseline both occur).
    pub period: f64,
}

/// A parsed arrival-process specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Baseline Poisson rate in tasks/second.
    pub rate: f64,
    /// Optional periodic burst overlay.
    pub burst: Option<Burst>,
}

impl ArrivalSpec {
    /// A plain Poisson process at `rate` tasks/second.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidTrace`] when the rate is not finite and in
    /// `(0, MAX_RATE]`.
    pub fn poisson(rate: f64) -> Result<Self> {
        let spec = ArrivalSpec { rate, burst: None };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<()> {
        if !self.rate.is_finite() || self.rate <= 0.0 {
            return Err(WorkloadError::InvalidTrace(
                "arrival rate must be finite and > 0",
            ));
        }
        let peak = match self.burst {
            None => self.rate,
            Some(b) => {
                if !b.factor.is_finite() || b.factor < 1.0 {
                    return Err(WorkloadError::InvalidTrace("burst factor must be >= 1"));
                }
                if !b.period.is_finite() || b.period < 2.0 * BIN_SECONDS {
                    return Err(WorkloadError::InvalidTrace(
                        "burst period must be >= 2 seconds",
                    ));
                }
                self.rate * b.factor
            }
        };
        if peak > MAX_RATE {
            return Err(WorkloadError::InvalidTrace(
                "effective arrival rate exceeds 500 tasks/s",
            ));
        }
        Ok(())
    }

    /// The intensity (tasks/second) in effect at time `t`, evaluated at
    /// bin granularity (the value at the enclosing bin's start).
    pub fn rate_at(&self, t: f64) -> f64 {
        let bin_start = (t / BIN_SECONDS).floor() * BIN_SECONDS;
        match self.burst {
            Some(b) if bin_start.rem_euclid(b.period) < BIN_SECONDS => self.rate * b.factor,
            _ => self.rate,
        }
    }

    /// Draws every arrival with `window.start <= t < window.end`, in
    /// ascending time order. Pure function of `(self, seed, window)`:
    /// disjoint adjacent windows concatenate to exactly the combined
    /// window's arrivals.
    pub fn arrival_times(&self, seed: u64, window: Range<f64>) -> Vec<f64> {
        self.sample(seed, window, |_, t| t)
    }

    /// Draws the tasks arriving in `window`: arrival times as in
    /// [`arrival_times`](Self::arrival_times), plus a uniformly drawn task
    /// type and a TUF from `policy` — all from the same per-bin stream, so
    /// a task's full identity is a pure function of `(spec, seed, bin,
    /// draw index)` and survives any re-windowing.
    ///
    /// Returned tasks carry the placeholder id `TaskId(0)`; callers assign
    /// real ids by arrival rank ([`Trace::new`](crate::Trace::new) does).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidTrace`] when `task_types` is zero.
    pub fn generate(
        &self,
        seed: u64,
        window: Range<f64>,
        task_types: usize,
        policy: &TufPolicy,
    ) -> Result<Vec<Task>> {
        if task_types == 0 {
            return Err(WorkloadError::InvalidTrace("task_types must be > 0"));
        }
        Ok(self.sample(seed, window, |rng, arrival| Task {
            id: TaskId(0),
            task_type: TaskTypeId(rng.gen_range(0..task_types) as u16),
            arrival,
            tuf: policy.draw(rng),
        }))
    }

    /// Core per-bin sampler. `make` consumes the per-bin RNG *immediately
    /// after* the arrival's offset is drawn, so every arrival's payload is
    /// tied to its draw index within the bin.
    fn sample<T>(
        &self,
        seed: u64,
        window: Range<f64>,
        mut make: impl FnMut(&mut StdRng, f64) -> T,
    ) -> Vec<T> {
        assert!(
            window.start >= 0.0 && window.start.is_finite() && window.end.is_finite(),
            "arrival window must be finite and non-negative"
        );
        let mut out: Vec<(f64, u32, T)> = Vec::new();
        if window.end <= window.start {
            return Vec::new();
        }
        let first_bin = (window.start / BIN_SECONDS).floor() as u64;
        let last_bin = ((window.end / BIN_SECONDS).ceil() as u64).max(first_bin + 1);
        for bin in first_bin..last_bin {
            let bin_start = bin as f64 * BIN_SECONDS;
            let lambda = self.rate_at(bin_start) * BIN_SECONDS;
            let mut rng = StdRng::seed_from_u64(bin_stream(seed, bin));
            let count = poisson(&mut rng, lambda);
            let base = out.len();
            for j in 0..count {
                let t = bin_start + rng.gen::<f64>() * BIN_SECONDS;
                let item = make(&mut rng, t);
                if t >= window.start && t < window.end {
                    out.push((t, j, item));
                }
            }
            // Within a bin, order by (time, draw index); bins are already
            // visited in time order.
            out[base..].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        out.into_iter().map(|(_, _, item)| item).collect()
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poisson:{}", self.rate)?;
        if let Some(b) = self.burst {
            write!(f, ",burst:{}x{}", b.factor, b.period)?;
        }
        Ok(())
    }
}

impl FromStr for ArrivalSpec {
    type Err = WorkloadError;

    fn from_str(s: &str) -> Result<Self> {
        let mut rate = None;
        let mut burst = None;
        for part in s.split(',') {
            let (key, value) = part
                .split_once(':')
                .ok_or(WorkloadError::InvalidTrace("expected <kind>:<value>"))?;
            match key.trim() {
                "poisson" => {
                    let r: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| WorkloadError::InvalidTrace("bad poisson rate"))?;
                    rate = Some(r);
                }
                "burst" => {
                    let (factor, period) =
                        value
                            .trim()
                            .split_once('x')
                            .ok_or(WorkloadError::InvalidTrace(
                                "expected burst:<factor>x<period>",
                            ))?;
                    burst = Some(Burst {
                        factor: factor
                            .parse()
                            .map_err(|_| WorkloadError::InvalidTrace("bad burst factor"))?,
                        period: period
                            .parse()
                            .map_err(|_| WorkloadError::InvalidTrace("bad burst period"))?,
                    });
                }
                _ => {
                    return Err(WorkloadError::InvalidTrace(
                        "unknown arrival clause (expected poisson/burst)",
                    ))
                }
            }
        }
        let spec = ArrivalSpec {
            rate: rate.ok_or(WorkloadError::InvalidTrace("missing poisson:<rate> clause"))?,
            burst,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// A stateful cursor over an arrival process: hands out the tasks arriving
/// in `[frontier, until)` and advances the frontier. Because the
/// underlying sampler is windowless, a stream rebuilt at any frontier
/// (e.g. after a daemon restart) continues bit-identically.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    spec: ArrivalSpec,
    seed: u64,
    task_types: usize,
    policy: TufPolicy,
    frontier: f64,
}

impl ArrivalStream {
    /// Creates a stream starting at time 0.
    pub fn new(spec: ArrivalSpec, seed: u64, task_types: usize, policy: TufPolicy) -> Self {
        ArrivalStream {
            spec,
            seed,
            task_types,
            policy,
            frontier: 0.0,
        }
    }

    /// Repositions the frontier (used when resuming a persisted stream).
    pub fn seek(&mut self, frontier: f64) {
        self.frontier = frontier;
    }

    /// The exclusive end of the last window handed out.
    pub fn frontier(&self) -> f64 {
        self.frontier
    }

    /// The spec this stream samples.
    pub fn spec(&self) -> &ArrivalSpec {
        &self.spec
    }

    /// Returns the tasks arriving in `[frontier, until)` and advances the
    /// frontier to `until`. A non-advancing `until` yields no tasks.
    ///
    /// # Errors
    ///
    /// See [`ArrivalSpec::generate`].
    pub fn until(&mut self, until: f64) -> Result<Vec<Task>> {
        if until <= self.frontier {
            return Ok(Vec::new());
        }
        let tasks = self.spec.generate(
            self.seed,
            self.frontier..until,
            self.task_types,
            &self.policy,
        )?;
        self.frontier = until;
        Ok(tasks)
    }
}

/// Mixes a stream seed with a bin index into a per-bin RNG seed
/// (SplitMix64-style finalizer, so neighbouring bins decorrelate).
fn bin_stream(seed: u64, bin: u64) -> u64 {
    let mut z = seed
        ^ bin
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knuth's Poisson sampler — exact for the λ range `validate` admits.
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    debug_assert!((0.0..=MAX_RATE * BIN_SECONDS).contains(&lambda));
    if lambda <= 0.0 {
        return 0;
    }
    let floor = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= floor {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips() {
        let plain: ArrivalSpec = "poisson:2.5".parse().unwrap();
        assert_eq!(plain.rate, 2.5);
        assert!(plain.burst.is_none());
        assert_eq!(plain.to_string().parse::<ArrivalSpec>().unwrap(), plain);

        let bursty: ArrivalSpec = "poisson:1.5,burst:4x30".parse().unwrap();
        assert_eq!(
            bursty.burst,
            Some(Burst {
                factor: 4.0,
                period: 30.0
            })
        );
        assert_eq!(bursty.to_string().parse::<ArrivalSpec>().unwrap(), bursty);
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for bad in [
            "",
            "poisson",
            "poisson:abc",
            "poisson:0",
            "poisson:-1",
            "poisson:inf",
            "poisson:9999",
            "burst:2x30",
            "poisson:1,burst:2",
            "poisson:1,burst:0.5x30",
            "poisson:1,burst:2x1",
            "poisson:400,burst:2x30",
            "uniform:3",
        ] {
            assert!(bad.parse::<ArrivalSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let spec: ArrivalSpec = "poisson:3,burst:2x10".parse().unwrap();
        let a = spec.arrival_times(7, 0.0..120.0);
        let b = spec.arrival_times(7, 0.0..120.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let other = spec.arrival_times(8, 0.0..120.0);
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn disjoint_windows_compose_exactly() {
        let spec: ArrivalSpec = "poisson:2,burst:3x7".parse().unwrap();
        let whole = spec.arrival_times(42, 0.0..60.0);
        // Split at a bin boundary and at a mid-bin point.
        for split in [20.0, 33.4] {
            let mut merged = spec.arrival_times(42, 0.0..split);
            merged.extend(spec.arrival_times(42, split..60.0));
            assert_eq!(merged, whole, "split at {split}");
        }
    }

    #[test]
    fn burst_bins_run_hotter() {
        let spec: ArrivalSpec = "poisson:2,burst:10x10".parse().unwrap();
        assert_eq!(spec.rate_at(0.5), 20.0);
        assert_eq!(spec.rate_at(1.5), 2.0);
        assert_eq!(spec.rate_at(10.2), 20.0);
        // Over a long window the burst seconds hold far more arrivals.
        let times = spec.arrival_times(5, 0.0..500.0);
        let in_burst = times.iter().filter(|t| t.rem_euclid(10.0) < 1.0).count();
        assert!(
            in_burst as f64 > times.len() as f64 * 0.4,
            "burst seconds are 10% of time but held {in_burst}/{} arrivals",
            times.len()
        );
    }

    #[test]
    fn generated_tasks_are_complete_and_windowed() {
        let spec = ArrivalSpec::poisson(4.0).unwrap();
        let tasks = spec
            .generate(9, 10.0..40.0, 6, &TufPolicy::essc_default())
            .unwrap();
        assert!(!tasks.is_empty());
        for pair in tasks.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        for t in &tasks {
            assert!(t.arrival >= 10.0 && t.arrival < 40.0);
            assert!((t.task_type.0 as usize) < 6);
            assert!(t.tuf.priority() > 0.0);
        }
        assert!(spec
            .generate(9, 0.0..10.0, 0, &TufPolicy::essc_default())
            .is_err());
    }

    #[test]
    fn stream_cursor_matches_one_shot_generation() {
        let spec: ArrivalSpec = "poisson:2,burst:2x5".parse().unwrap();
        let policy = TufPolicy::essc_default();
        let whole = spec.generate(3, 0.0..30.0, 4, &policy).unwrap();
        let mut stream = ArrivalStream::new(spec, 3, 4, policy.clone());
        let mut fed = Vec::new();
        for until in [7.5, 7.5, 12.0, 30.0] {
            fed.extend(stream.until(until).unwrap());
        }
        assert_eq!(stream.frontier(), 30.0);
        assert_eq!(fed, whole);

        // A resumed cursor continues the same stream.
        let mut resumed = ArrivalStream::new(spec, 3, 4, policy);
        resumed.seek(12.0);
        let tail = resumed.until(30.0).unwrap();
        assert_eq!(&fed[fed.len() - tail.len()..], &tail[..]);
    }

    #[test]
    fn empirical_rate_is_close_to_nominal() {
        let spec = ArrivalSpec::poisson(5.0).unwrap();
        let times = spec.arrival_times(11, 0.0..2000.0);
        let rate = times.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.25, "empirical rate {rate}");
    }
}
