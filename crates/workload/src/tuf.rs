//! Time-utility functions (§IV-B1, Fig. 1).
//!
//! A TUF maps the time a task has spent in the system (completion time minus
//! arrival time) to the utility it earns. It is assembled from:
//!
//! * **priority** P — the maximum obtainable utility,
//! * **urgency** u — the base decay rate (1/seconds),
//! * a sequence of **utility characteristic classes**: each class occupies a
//!   time interval and specifies a *beginning* and *ending percentage of
//!   maximum priority* plus an *urgency modifier* scaling the decay rate
//!   inside that interval.
//!
//! Within class `i` spanning `[tᵢ, tᵢ₊₁)` the utility is
//!
//! ```text
//! Υ(t) = P · max(endᵢ, beginᵢ · exp(−u·modᵢ·(t − tᵢ)))
//! ```
//!
//! i.e. exponential decay from the class's begin level, floored at its end
//! level; class boundaries may step *down* (Fig. 1 shows such drops). After
//! the last class the utility stays at a constant `final` fraction
//! (typically zero — a soft deadline). Monotonicity is enforced at
//! construction: each class must begin at or below the level where the
//! previous class can end.

use crate::{Result, WorkloadError};
use serde::{Deserialize, Serialize};

/// One utility characteristic class (a discrete interval of the TUF).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityClass {
    /// Interval length in seconds (must be > 0).
    pub duration: f64,
    /// Utility at the start of the interval, as a fraction of priority.
    pub begin_fraction: f64,
    /// Floor utility inside the interval, as a fraction of priority.
    pub end_fraction: f64,
    /// Multiplier applied to the base urgency inside this interval
    /// (0 ⇒ flat at `begin_fraction` until the floor/boundary).
    pub urgency_modifier: f64,
}

/// One precomputed segment of the flattened evaluation table: everything
/// [`Tuf::utility`] needs for its class, in one cache line, with the
/// urgency product folded in ahead of time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TufSeg {
    /// Exclusive upper bound of the segment (`start + duration`).
    end: f64,
    /// Inclusive lower bound (cumulative duration of earlier classes).
    start: f64,
    /// Utility fraction at `start`.
    begin_fraction: f64,
    /// Floor fraction inside the segment.
    end_fraction: f64,
    /// Precomputed `(-urgency) * urgency_modifier`; multiplying by
    /// `t - start` reproduces the original decay exponent bit-exactly.
    neg_rate: f64,
    /// Smallest time at which the decayed value is *provably* at or below
    /// the floor, so [`Tuf::utility`] may return `priority * end_fraction`
    /// without calling `exp()` — with identical bits, because `max` would
    /// pick the floor anyway. `INFINITY` when no such time exists in the
    /// segment (floor at 0, or no decay). See [`floor_threshold`].
    skip_t: f64,
}

/// Computes [`TufSeg::skip_t`]: the earliest `t` in `[start, seg_end)` past
/// which `begin · exp(neg_rate·(t − start)) ≤ end` holds for every later
/// point *as computed in floating point*, or `INFINITY` if none.
///
/// Starts from the analytic crossing `start + ln(end/begin)/neg_rate` and
/// nudges forward until the computed value sits below `end` with margin
/// (1 − 1e-12). The margin absorbs libm's ≤1 ulp `exp` error plus rounding
/// of the surrounding ops, so monotone decay guarantees every `t` beyond the
/// returned threshold computes a value strictly under the floor — the skip
/// is bit-exact, not approximate.
fn floor_threshold(start: f64, seg_end: f64, begin: f64, end: f64, neg_rate: f64) -> f64 {
    if begin <= end {
        // Decay can only lower the value, so the floor wins immediately
        // (begin > end is enforced at build; equality means a flat class).
        return start;
    }
    if end <= 0.0 || neg_rate >= 0.0 {
        // exp() is strictly positive / there is no decay: never reaches it.
        return f64::INFINITY;
    }
    let mut t = start + (end / begin).ln() / neg_rate;
    if !t.is_finite() {
        return f64::INFINITY;
    }
    let safe = end * (1.0 - 1e-12);
    for _ in 0..128 {
        if t >= seg_end {
            return f64::INFINITY;
        }
        if begin * (neg_rate * (t - start)).exp() <= safe {
            return t;
        }
        t += (t.abs() * 1e-12).max(1e-9);
    }
    f64::INFINITY
}

/// A monotonically non-increasing time-utility function.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Tuf {
    priority: f64,
    urgency: f64,
    classes: Vec<UtilityClass>,
    /// Utility fraction after the last class.
    final_fraction: f64,
    /// Precomputed evaluation table (len = classes.len()), rebuilt by every
    /// construction path including [`Deserialize`].
    #[serde(skip)]
    segs: Vec<TufSeg>,
}

impl Tuf {
    /// Maximum obtainable utility (the task's priority).
    #[inline]
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// Base urgency (decay rate, 1/s).
    #[inline]
    pub fn urgency(&self) -> f64 {
        self.urgency
    }

    /// The characteristic classes.
    #[inline]
    pub fn classes(&self) -> &[UtilityClass] {
        &self.classes
    }

    /// Utility fraction earned after every class has elapsed.
    #[inline]
    pub fn final_fraction(&self) -> f64 {
        self.final_fraction
    }

    /// Total span of the classes; beyond this the TUF is constant.
    pub fn horizon(&self) -> f64 {
        self.classes.iter().map(|c| c.duration).sum()
    }

    /// Evaluates the TUF at `elapsed` seconds since arrival. Negative input
    /// (completion before arrival — impossible in a valid schedule) is
    /// treated as 0.
    #[inline]
    pub fn utility(&self, elapsed: f64) -> f64 {
        let t = elapsed.max(0.0);
        // Segment ends are strictly ascending (durations are validated > 0),
        // so the active segment is the first whose end exceeds t. TUFs have a
        // handful of classes, so a branchless count beats both the original
        // per-class branch walk and a binary search.
        let mut idx = 0usize;
        for seg in &self.segs {
            idx += (t >= seg.end) as usize;
        }
        match self.segs.get(idx) {
            Some(seg) => {
                if t >= seg.skip_t {
                    // Provably in the floor region: `max` below would pick
                    // `end_fraction`, so skip the exp() — same bits, less math.
                    return self.priority * seg.end_fraction;
                }
                let decayed = seg.begin_fraction * (seg.neg_rate * (t - seg.start)).exp();
                self.priority * decayed.max(seg.end_fraction)
            }
            None => self.priority * self.final_fraction,
        }
    }

    /// Rebuilds the precomputed evaluation table from `classes`.
    fn rebuild_table(&mut self) {
        self.segs.clear();
        self.segs.reserve_exact(self.classes.len());
        let mut acc = 0.0;
        for c in &self.classes {
            let end = acc + c.duration;
            let neg_rate = (-self.urgency) * c.urgency_modifier;
            self.segs.push(TufSeg {
                end,
                start: acc,
                begin_fraction: c.begin_fraction,
                end_fraction: c.end_fraction,
                neg_rate,
                skip_t: floor_threshold(acc, end, c.begin_fraction, c.end_fraction, neg_rate),
            });
            acc += c.duration;
        }
    }

    /// Restores derived state after serde deserialisation.
    ///
    /// Since [`Deserialize`] became self-restoring this is a backwards
    /// compatible no-op (it rebuilds a table that is already correct); older
    /// call sites may keep invoking it safely.
    pub fn after_deserialize(mut self) -> Self {
        self.rebuild_table();
        self
    }

    /// A TUF that earns `priority` regardless of completion time.
    pub fn constant(priority: f64) -> Self {
        TufBuilder::new(priority)
            .final_fraction(1.0)
            .build()
            .expect("constant TUF is valid")
    }

    /// A hard-deadline TUF: full priority until `deadline` seconds after
    /// arrival, zero afterwards.
    pub fn hard_deadline(priority: f64, deadline: f64) -> Result<Self> {
        TufBuilder::new(priority)
            .class(UtilityClass {
                duration: deadline,
                begin_fraction: 1.0,
                end_fraction: 1.0,
                urgency_modifier: 0.0,
            })
            .build()
    }

    /// Smallest elapsed time at which the utility has dropped to or below
    /// `fraction` of priority (∞ if it never does). Used by the task-dropping
    /// extension to decide whether a task is still worth scheduling.
    pub fn time_to_fraction(&self, fraction: f64) -> f64 {
        if self.final_fraction > fraction {
            return f64::INFINITY;
        }
        let mut t = 0.0;
        for class in &self.classes {
            if class.end_fraction <= fraction {
                // The drop happens inside this class (or at its start).
                if class.begin_fraction <= fraction {
                    return t;
                }
                let rate = self.urgency * class.urgency_modifier;
                if rate > 0.0 {
                    let dt = (class.begin_fraction / fraction.max(1e-300)).ln() / rate;
                    if dt <= class.duration {
                        return t + dt;
                    }
                }
            }
            t += class.duration;
        }
        t
    }
}

/// Builder for [`Tuf`] with monotonicity validation.
///
/// ```
/// use hetsched_workload::{TufBuilder, UtilityClass};
///
/// // Priority 10, decaying to nothing over a 5-minute soft deadline.
/// let tuf = TufBuilder::new(10.0)
///     .urgency(0.01)
///     .class(UtilityClass {
///         duration: 300.0,
///         begin_fraction: 1.0,
///         end_fraction: 0.0,
///         urgency_modifier: 1.0,
///     })
///     .build()
///     .unwrap();
/// assert_eq!(tuf.utility(0.0), 10.0);
/// assert!(tuf.utility(100.0) < 10.0);
/// assert_eq!(tuf.utility(1e6), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TufBuilder {
    priority: f64,
    urgency: f64,
    classes: Vec<UtilityClass>,
    final_fraction: f64,
}

impl TufBuilder {
    /// Starts a TUF with the given priority, base urgency 1.0, no classes,
    /// and a final fraction of 0 (utility fully decays).
    pub fn new(priority: f64) -> Self {
        TufBuilder {
            priority,
            urgency: 1.0,
            classes: Vec::new(),
            final_fraction: 0.0,
        }
    }

    /// Sets the base urgency (decay rate, 1/s).
    pub fn urgency(mut self, urgency: f64) -> Self {
        self.urgency = urgency;
        self
    }

    /// Appends a characteristic class.
    pub fn class(mut self, class: UtilityClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Sets the utility fraction earned after the last class.
    pub fn final_fraction(mut self, fraction: f64) -> Self {
        self.final_fraction = fraction;
        self
    }

    /// Validates and builds the TUF.
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::InvalidTuf`] — non-finite or out-of-domain
    ///   parameters (priority ≤ 0, urgency < 0, fractions outside [0, 1],
    ///   class duration ≤ 0, begin < end within a class).
    /// * [`WorkloadError::NonMonotoneTuf`] — a class begins above the lowest
    ///   level the previous class can reach, or the final fraction exceeds
    ///   the last class's end level.
    pub fn build(self) -> Result<Tuf> {
        if !self.priority.is_finite() || self.priority <= 0.0 {
            return Err(WorkloadError::InvalidTuf("priority must be finite and > 0"));
        }
        if !self.urgency.is_finite() || self.urgency < 0.0 {
            return Err(WorkloadError::InvalidTuf("urgency must be finite and >= 0"));
        }
        if !(0.0..=1.0).contains(&self.final_fraction) {
            return Err(WorkloadError::InvalidTuf(
                "final fraction must be in [0, 1]",
            ));
        }
        let mut prev_floor = 1.0f64;
        for (i, c) in self.classes.iter().enumerate() {
            if !c.duration.is_finite() || c.duration <= 0.0 {
                return Err(WorkloadError::InvalidTuf("class duration must be > 0"));
            }
            if !(0.0..=1.0).contains(&c.begin_fraction) || !(0.0..=1.0).contains(&c.end_fraction) {
                return Err(WorkloadError::InvalidTuf(
                    "class fractions must be in [0, 1]",
                ));
            }
            if c.end_fraction > c.begin_fraction {
                return Err(WorkloadError::InvalidTuf("class end above its begin"));
            }
            if !c.urgency_modifier.is_finite() || c.urgency_modifier < 0.0 {
                return Err(WorkloadError::InvalidTuf("urgency modifier must be >= 0"));
            }
            if c.begin_fraction > prev_floor + 1e-12 {
                return Err(WorkloadError::NonMonotoneTuf { class: i });
            }
            // The lowest level this class can hand to the next one: with a
            // zero decay rate the level stays at begin_fraction, otherwise
            // it can fall to end_fraction.
            prev_floor = if self.urgency * c.urgency_modifier > 0.0 {
                c.end_fraction
            } else {
                c.begin_fraction
            };
        }
        if self.final_fraction > prev_floor + 1e-12 {
            return Err(WorkloadError::NonMonotoneTuf {
                class: self.classes.len(),
            });
        }
        let mut tuf = Tuf {
            priority: self.priority,
            urgency: self.urgency,
            classes: self.classes,
            final_fraction: self.final_fraction,
            segs: Vec::new(),
        };
        tuf.rebuild_table();
        Ok(tuf)
    }
}

/// Mirror of [`Tuf`]'s serialised fields; deserialisation goes through it so
/// the evaluation table can be rebuilt before the value is handed out.
#[derive(Deserialize)]
struct TufSerde {
    priority: f64,
    urgency: f64,
    classes: Vec<UtilityClass>,
    final_fraction: f64,
}

// Hand-written so a `Tuf` is valid straight out of serde: forgetting
// `Trace::after_deserialize` used to leave the precomputed table empty and
// every utility at the final-fraction level.
impl<'de> serde::Deserialize<'de> for Tuf {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let raw = TufSerde::deserialize(deserializer)?;
        let mut tuf = Tuf {
            priority: raw.priority,
            urgency: raw.urgency,
            classes: raw.classes,
            final_fraction: raw.final_fraction,
            segs: Vec::new(),
        };
        tuf.rebuild_table();
        Ok(tuf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three-class sample TUF shaped like the paper's Fig. 1 (priority
    /// 12, value ≈12 early, ≈7 around t = 47).
    pub(crate) fn fig1_like() -> Tuf {
        TufBuilder::new(12.0)
            .urgency(0.02)
            .class(UtilityClass {
                duration: 30.0,
                begin_fraction: 1.0,
                end_fraction: 0.75,
                urgency_modifier: 1.0,
            })
            .class(UtilityClass {
                duration: 30.0,
                begin_fraction: 0.7,
                end_fraction: 0.4,
                urgency_modifier: 1.5,
            })
            .class(UtilityClass {
                duration: 40.0,
                begin_fraction: 0.35,
                end_fraction: 0.0,
                urgency_modifier: 2.0,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_sample_values() {
        let tuf = fig1_like();
        // At time 0 we earn the full priority.
        assert!((tuf.utility(0.0) - 12.0).abs() < 1e-12);
        // Around t = 20 the paper's figure reads ~12 units... our shape
        // gives a decayed value strictly between the class bounds.
        let u20 = tuf.utility(20.0);
        assert!((0.75 * 12.0..12.0).contains(&u20));
        // At t = 47 (second class) the figure reads ~7 units.
        let u47 = tuf.utility(47.0);
        assert!(u47 < u20);
        assert!((0.4 * 12.0..=0.7 * 12.0).contains(&u47));
        // Far beyond the horizon, utility is zero.
        assert_eq!(tuf.utility(1e6), 0.0);
    }

    #[test]
    fn is_monotone_non_increasing() {
        let tuf = fig1_like();
        let mut prev = f64::INFINITY;
        for i in 0..=1100 {
            let u = tuf.utility(i as f64 * 0.1);
            assert!(u <= prev + 1e-9, "increase at t = {}", i as f64 * 0.1);
            prev = u;
        }
    }

    #[test]
    fn negative_elapsed_clamps_to_zero() {
        let tuf = fig1_like();
        assert_eq!(tuf.utility(-5.0), tuf.utility(0.0));
    }

    #[test]
    fn constant_tuf_never_decays() {
        let tuf = Tuf::constant(7.5);
        assert_eq!(tuf.utility(0.0), 7.5);
        assert_eq!(tuf.utility(1e9), 7.5);
    }

    #[test]
    fn hard_deadline_steps_to_zero() {
        let tuf = Tuf::hard_deadline(10.0, 60.0).unwrap();
        assert_eq!(tuf.utility(59.9), 10.0);
        assert_eq!(tuf.utility(60.0), 0.0);
        assert_eq!(tuf.utility(61.0), 0.0);
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(TufBuilder::new(0.0).build().is_err());
        assert!(TufBuilder::new(-3.0).build().is_err());
        assert!(TufBuilder::new(1.0).urgency(-1.0).build().is_err());
        assert!(TufBuilder::new(1.0).final_fraction(1.5).build().is_err());
        let bad_duration = UtilityClass {
            duration: 0.0,
            begin_fraction: 1.0,
            end_fraction: 0.0,
            urgency_modifier: 1.0,
        };
        assert!(TufBuilder::new(1.0).class(bad_duration).build().is_err());
        let end_above_begin = UtilityClass {
            duration: 1.0,
            begin_fraction: 0.5,
            end_fraction: 0.8,
            urgency_modifier: 1.0,
        };
        assert!(TufBuilder::new(1.0).class(end_above_begin).build().is_err());
    }

    #[test]
    fn builder_rejects_non_monotone_class_sequence() {
        // Second class begins above where the first can end.
        let c1 = UtilityClass {
            duration: 10.0,
            begin_fraction: 1.0,
            end_fraction: 0.3,
            urgency_modifier: 1.0,
        };
        let c2 = UtilityClass {
            duration: 10.0,
            begin_fraction: 0.9,
            end_fraction: 0.1,
            urgency_modifier: 1.0,
        };
        let err = TufBuilder::new(1.0)
            .class(c1)
            .class(c2)
            .build()
            .unwrap_err();
        assert_eq!(err, WorkloadError::NonMonotoneTuf { class: 1 });
    }

    #[test]
    fn builder_rejects_final_fraction_above_last_floor() {
        let c = UtilityClass {
            duration: 10.0,
            begin_fraction: 1.0,
            end_fraction: 0.2,
            urgency_modifier: 1.0,
        };
        let err = TufBuilder::new(1.0)
            .class(c)
            .final_fraction(0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, WorkloadError::NonMonotoneTuf { class: 1 });
    }

    #[test]
    fn flat_class_keeps_begin_level_for_next() {
        // With a zero urgency modifier the class never decays below its
        // begin level, so the next class may begin that high.
        let flat = UtilityClass {
            duration: 5.0,
            begin_fraction: 0.8,
            end_fraction: 0.0,
            urgency_modifier: 0.0,
        };
        let next = UtilityClass {
            duration: 5.0,
            begin_fraction: 0.8,
            end_fraction: 0.0,
            urgency_modifier: 1.0,
        };
        assert!(TufBuilder::new(1.0).class(flat).class(next).build().is_ok());
    }

    #[test]
    fn horizon_sums_durations() {
        assert_eq!(fig1_like().horizon(), 100.0);
        assert_eq!(Tuf::constant(1.0).horizon(), 0.0);
    }

    #[test]
    fn time_to_fraction() {
        let tuf = Tuf::hard_deadline(10.0, 60.0).unwrap();
        // Drops to ≤ 0.5 fraction exactly at the deadline.
        assert!((tuf.time_to_fraction(0.5) - 60.0).abs() < 1e-9);
        // Constant TUF never drops.
        assert_eq!(Tuf::constant(1.0).time_to_fraction(0.5), f64::INFINITY);
        // Decaying TUF drops inside the first class at ln(1/f)/rate.
        let tuf = fig1_like();
        let t = tuf.time_to_fraction(0.8);
        let expect = (1.0f64 / 0.8).ln() / 0.02;
        assert!((t - expect).abs() < 1e-9, "t = {t}, expect {expect}");
    }

    #[test]
    fn serde_roundtrip_restores_starts() {
        let tuf = fig1_like();
        let json = serde_json::to_string(&tuf).unwrap();
        let back: Tuf = serde_json::from_str(&json).unwrap();
        let back = back.after_deserialize();
        for t in [0.0, 10.0, 35.0, 47.0, 80.0, 200.0] {
            assert!((tuf.utility(t) - back.utility(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn deserialize_is_self_restoring() {
        // Regression: `Deserialize` must rebuild the evaluation table itself.
        // Round-trip WITHOUT calling `after_deserialize` and demand bit-exact
        // utilities — an empty table would flatline at the final fraction.
        let tuf = fig1_like();
        let json = serde_json::to_string(&tuf).unwrap();
        let back: Tuf = serde_json::from_str(&json).unwrap();
        assert_eq!(tuf, back);
        for i in 0..=2000 {
            let t = i as f64 * 0.1;
            assert_eq!(
                tuf.utility(t).to_bits(),
                back.utility(t).to_bits(),
                "t = {t}"
            );
        }
        // `after_deserialize` stays a harmless no-op on the restored value.
        let again = back.after_deserialize();
        assert_eq!(tuf, again);
    }

    #[test]
    fn table_scan_matches_piecewise_reference() {
        // Differential check of the flattened-table fast path against a
        // straightforward piecewise re-implementation of the docs' formula.
        let tufs = [
            fig1_like(),
            Tuf::constant(7.5),
            Tuf::hard_deadline(10.0, 60.0).unwrap(),
        ];
        for tuf in &tufs {
            for i in -10..=3000 {
                let elapsed = i as f64 * 0.05;
                let t = elapsed.max(0.0);
                let mut expect = tuf.priority() * tuf.final_fraction();
                let mut start = 0.0;
                for c in tuf.classes() {
                    if t < start + c.duration {
                        let decayed = c.begin_fraction
                            * (-tuf.urgency() * c.urgency_modifier * (t - start)).exp();
                        expect = tuf.priority() * decayed.max(c.end_fraction);
                        break;
                    }
                    start += c.duration;
                }
                assert_eq!(
                    tuf.utility(elapsed).to_bits(),
                    expect.to_bits(),
                    "elapsed = {elapsed}"
                );
            }
        }
    }
}
