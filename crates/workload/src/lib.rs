#![warn(missing_docs)]

//! Workload substrate: tasks, arrival traces, and time-utility functions.
//!
//! The paper's system performance metric is **total utility earned** (§IV-B1):
//! every task carries a monotonically-decreasing *time-utility function*
//! (TUF) parameterised by **priority** (maximum obtainable utility),
//! **urgency** (decay rate), and a sequence of **utility characteristic
//! classes** (discrete intervals with begin/end percentages of maximum
//! priority and an urgency modifier).
//!
//! Because the analysis is a *post-mortem static* study, the workload is a
//! **trace**: a list of tasks with known arrival times over a fixed window
//! (250 tasks / 15 min, 1000 tasks / 15 min, 4000 tasks / 1 h in the paper's
//! three data sets).

pub mod arrivals;
pub mod io;
pub mod policy;
pub mod trace;
pub mod tuf;

pub use arrivals::{ArrivalSpec, ArrivalStream, Burst};
pub use io::{trace_from_csv, trace_to_csv};
pub use policy::TufPolicy;
pub use trace::{ArrivalProcess, Task, TaskId, Trace, TraceGenerator};
pub use tuf::{Tuf, TufBuilder, UtilityClass};

use std::fmt;

/// Errors produced by the workload substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A TUF parameter violates its domain.
    InvalidTuf(&'static str),
    /// The constructed TUF would not be monotonically non-increasing.
    NonMonotoneTuf {
        /// Index of the offending class.
        class: usize,
    },
    /// Trace generation parameters are inconsistent.
    InvalidTrace(&'static str),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidTuf(what) => write!(f, "invalid TUF: {what}"),
            WorkloadError::NonMonotoneTuf { class } => {
                write!(f, "TUF not monotone at class {class}")
            }
            WorkloadError::InvalidTrace(what) => write!(f, "invalid trace: {what}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
