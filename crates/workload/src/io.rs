//! Trace import/export — the adoption path the paper's conclusion promises
//! ("provides the ability to take traces from any given system").
//!
//! The CSV schema is one row per task:
//!
//! ```text
//! task_type,arrival_s,priority,urgency
//! 3,12.75,8.0,0.004
//! ```
//!
//! TUF characteristic classes are policy, not trace, data: on import each
//! task's priority/urgency is combined with a caller-supplied class
//! template (usually [`crate::TufPolicy`]-style), mirroring how the ESSC
//! separates administrator policy from per-task parameters.

use crate::trace::{Task, TaskId, Trace};
use crate::tuf::{TufBuilder, UtilityClass};
use crate::{Result, WorkloadError};
use hetsched_data::TaskTypeId;
use std::fmt::Write as _;

/// Exports a trace to the CSV schema above.
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("task_type,arrival_s,priority,urgency\n");
    for t in trace.tasks() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            t.task_type.0,
            t.arrival,
            t.tuf.priority(),
            t.tuf.urgency()
        );
    }
    out
}

/// Imports a trace from CSV, attaching the given characteristic-class
/// template and final fraction to every task's (priority, urgency) pair.
///
/// # Errors
///
/// [`WorkloadError::InvalidTrace`] on malformed rows;
/// [`WorkloadError::InvalidTuf`] / [`WorkloadError::NonMonotoneTuf`] when a
/// row's parameters cannot form a valid TUF with the template.
pub fn trace_from_csv(
    csv: &str,
    duration: f64,
    classes: &[UtilityClass],
    final_fraction: f64,
) -> Result<Trace> {
    let mut tasks = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut field = |name: &'static str| {
            fields
                .next()
                .ok_or(WorkloadError::InvalidTrace(name))
                .and_then(|v| {
                    v.trim()
                        .parse::<f64>()
                        .map_err(|_| WorkloadError::InvalidTrace(name))
                })
        };
        let task_type = field("task_type")? as u16;
        let arrival = field("arrival_s")?;
        let priority = field("priority")?;
        let urgency = field("urgency")?;
        let mut builder = TufBuilder::new(priority).urgency(urgency);
        for c in classes {
            builder = builder.class(*c);
        }
        let tuf = builder.final_fraction(final_fraction).build()?;
        tasks.push(Task {
            id: TaskId(tasks.len() as u32),
            task_type: TaskTypeId(task_type),
            arrival,
            tuf,
        });
    }
    Trace::new(tasks, duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn template() -> Vec<UtilityClass> {
        vec![UtilityClass {
            duration: 600.0,
            begin_fraction: 1.0,
            end_fraction: 0.0,
            urgency_modifier: 1.0,
        }]
    }

    #[test]
    fn roundtrip_preserves_task_parameters() {
        let trace = TraceGenerator::new(25, 900.0, 5)
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let csv = trace_to_csv(&trace);
        let back = trace_from_csv(&csv, 900.0, &template(), 0.0).unwrap();
        assert_eq!(back.len(), 25);
        for (a, b) in trace.tasks().iter().zip(back.tasks()) {
            assert_eq!(a.task_type, b.task_type);
            assert!((a.arrival - b.arrival).abs() < 1e-12);
            assert!((a.tuf.priority() - b.tuf.priority()).abs() < 1e-12);
            assert!((a.tuf.urgency() - b.tuf.urgency()).abs() < 1e-12);
        }
    }

    #[test]
    fn import_sorts_by_arrival() {
        let csv = "task_type,arrival_s,priority,urgency\n1,500,1,0.01\n0,100,2,0.01\n";
        let trace = trace_from_csv(csv, 900.0, &template(), 0.0).unwrap();
        assert_eq!(trace.tasks()[0].arrival, 100.0);
        assert_eq!(trace.tasks()[0].id, TaskId(0));
        assert_eq!(trace.tasks()[1].arrival, 500.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        let missing = "task_type,arrival_s,priority,urgency\n1,500,1\n";
        assert!(trace_from_csv(missing, 900.0, &template(), 0.0).is_err());
        let garbage = "task_type,arrival_s,priority,urgency\nx,500,1,0.01\n";
        assert!(trace_from_csv(garbage, 900.0, &template(), 0.0).is_err());
    }

    #[test]
    fn rejects_invalid_tuf_parameters() {
        // Negative priority fails TUF validation.
        let csv = "task_type,arrival_s,priority,urgency\n1,500,-2,0.01\n";
        assert!(trace_from_csv(csv, 900.0, &template(), 0.0).is_err());
    }

    #[test]
    fn rejects_out_of_window_arrival() {
        let csv = "task_type,arrival_s,priority,urgency\n1,950,1,0.01\n";
        assert!(trace_from_csv(csv, 900.0, &template(), 0.0).is_err());
    }

    #[test]
    fn empty_body_is_invalid() {
        let csv = "task_type,arrival_s,priority,urgency\n";
        assert!(trace_from_csv(csv, 900.0, &template(), 0.0).is_err());
    }
}
