//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate supplies
//! the small rayon API surface the workspace uses — `par_iter()`,
//! `into_par_iter()`, `enumerate`, `map`, `map_init`, `collect` — backed by
//! `std::thread::scope`. Semantics match rayon where it matters here:
//! results are collected **in input order**, so parallel and serial
//! evaluation produce identical populations.
//!
//! Unlike real rayon, adapters are eager: each `map`/`map_init` call runs
//! the closure over all items (in parallel chunks) before returning. That
//! is semantically equivalent for the pure closures this workspace passes.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The adapter and trait exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// The number of threads the (implicit) global pool would use — the
/// host's available parallelism, mirroring upstream rayon's default
/// global pool size.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads to use for `n` items.
fn worker_count(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// Applies `f` to every item in parallel, preserving input order.
fn par_map<T: Send, U: Send, I, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<U>
where
    INIT: Fn() -> I + Sync,
    F: Fn(&mut I, T) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 || n < 2 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<U>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut rest_in = slots.as_mut_slice();
        let mut rest_out = results.as_mut_slice();
        while !rest_in.is_empty() {
            let take = chunk_len.min(rest_in.len());
            let (chunk_in, tail_in) = rest_in.split_at_mut(take);
            let (chunk_out, tail_out) = rest_out.split_at_mut(take);
            rest_in = tail_in;
            rest_out = tail_out;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                for (slot, out) in chunk_in.iter_mut().zip(chunk_out.iter_mut()) {
                    let item = slot.take().expect("item taken once");
                    *out = Some(f(&mut state, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// An eager "parallel iterator" over an owned buffer of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs each item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel (order-preserving).
    pub fn map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, || (), |_, item| f(item)),
        }
    }

    /// Applies `f` with a per-worker state created by `init` — the rayon
    /// idiom for thread-local scratch (e.g. one evaluator per thread).
    pub fn map_init<I, U: Send, INIT, F>(self, init: INIT, f: F) -> ParIter<U>
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, init, f),
        }
    }

    /// Keeps items passing the predicate (parallel, order-preserving).
    pub fn filter<F>(self, keep: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = par_map(
            self.items,
            || (),
            |_, item| if keep(&item) { Some(item) } else { None },
        );
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects the items into any `FromIterator` container, in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Types convertible into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references yield a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Borrows into a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_runs_init_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    7usize
                },
                |state, x| x + *state,
            )
            .collect();
        assert_eq!(out[0], 7);
        assert_eq!(out[99], 106);
        let workers = inits.load(Ordering::SeqCst);
        assert!(workers >= 1);
    }

    #[test]
    fn par_iter_with_enumerate() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect();
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<i32> = vec![5].into_par_iter().map(|x| x * x).collect();
        assert_eq!(one, vec![25]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
