//! Vendored stand-in for `criterion`.
//!
//! Provides the benchmarking surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!`/`criterion_main!` macros — as a minimal
//! wall-clock harness. Each benchmark warms up briefly, then times batches
//! of iterations and reports the per-iteration mean, spread, and iteration
//! count to stdout.
//!
//! No statistical regression analysis or plots; results are indicative
//! timings, which is what the workspace's benches need in this offline
//! environment. `--bench` style CLI filters are accepted and matched as
//! substrings against benchmark names.
//!
//! `cargo bench -- --test` mirrors upstream's smoke mode: every benchmark
//! body runs exactly once with no warm-up or timing, so CI can prove the
//! benches still build and execute without paying for measurements.
//!
//! When the `BENCH_EXPORT` environment variable names a file, every
//! measured benchmark additionally appends one JSON line to it —
//! `{"name": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...,
//! "max_ns": ..., "iterations": ...}` — which the repo's `bench_compare`
//! tool folds into the dated `BENCH_<date>.json` trajectory files.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `size/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    /// Mean per-iteration time of the measured run, set by `iter`.
    measured: Option<Measurement>,
    sample_size: usize,
    /// Smoke mode (`--test`): run the payload once, skip measurement.
    test_mode: bool,
}

/// One benchmark's timing result.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    /// Median of the per-sample per-iteration times — the statistic the
    /// repo's `BENCH_*.json` trajectory tracks (robust to the odd sample
    /// that catches a scheduler hiccup).
    median: Duration,
    min: Duration,
    max: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, warming up first, then sampling `sample_size`
    /// batches whose sizes adapt to the routine's speed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run for ~50ms to stabilise caches/frequency and estimate
        // the per-iteration cost.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let est = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Batch size: aim for ~10ms per sample so Instant overhead is noise.
        let batch = ((0.010 / est.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let samples = self.sample_size.clamp(2, 100);

        let mut total = Duration::ZERO;
        let mut per_sample: Vec<Duration> = Vec::with_capacity(samples);
        let mut iterations = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            per_sample.push(elapsed / batch as u32);
            total += elapsed;
            iterations += batch;
        }
        per_sample.sort_unstable();
        self.measured = Some(Measurement {
            mean: total / iterations.max(1) as u32,
            median: per_sample[per_sample.len() / 2],
            min: per_sample[0],
            max: *per_sample.last().expect("samples >= 2"),
            iterations,
        });
    }
}

/// The benchmark driver: registers and runs benchmarks.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept (and use) a trailing CLI filter like `cargo bench -- sort`;
        // honour `--test` (upstream's run-once smoke mode); ignore other
        // criterion flags such as `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Criterion {
            filter,
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs `routine` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkName, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            None,
            &name.into_name(),
            self.filter.as_deref(),
            self.sample_size,
            self.test_mode,
            routine,
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkName, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &name.into_name(),
            self.filter.as_deref(),
            self.sample_size,
            self.test_mode,
            routine,
        );
        self
    }

    /// Runs a parameterised benchmark; the input is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.name,
            self.filter.as_deref(),
            self.sample_size,
            self.test_mode,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: Option<&str>,
    name: &str,
    filter: Option<&str>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        measured: None,
        sample_size,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("{full_name:<50} ok (test mode, 1 iteration)");
        return;
    }
    match bencher.measured {
        Some(m) => {
            println!(
                "{full_name:<50} {:>12} /iter median  (mean {}, min {}, max {}, {} iters)",
                fmt_duration(m.median),
                fmt_duration(m.mean),
                fmt_duration(m.min),
                fmt_duration(m.max),
                m.iterations,
            );
            if let Ok(path) = std::env::var("BENCH_EXPORT") {
                if !path.is_empty() {
                    if let Err(e) = export_measurement(&path, &full_name, &m) {
                        eprintln!("BENCH_EXPORT: cannot append to {path}: {e}");
                    }
                }
            }
        }
        None => println!("{full_name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Appends one JSON line for a measured benchmark to the `BENCH_EXPORT`
/// file. Hand-rolled serialisation: the shim is dependency-free, and the
/// only string is the benchmark name (escaped minimally).
fn export_measurement(path: &str, name: &str, m: &Measurement) -> std::io::Result<()> {
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"name\":\"{escaped}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iterations\":{}}}",
        m.median.as_nanos(),
        m.mean.as_nanos(),
        m.min.as_nanos(),
        m.max.as_nanos(),
        m.iterations,
    )
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            measured: None,
            sample_size: 3,
            test_mode: false,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        let m = b.measured.expect("measured");
        assert!(m.iterations > 0);
        assert!(m.mean <= m.max);
        assert!(m.min <= m.median && m.median <= m.max);
    }

    #[test]
    fn export_writes_one_json_line_per_measurement() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-export-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let m = Measurement {
            mean: Duration::from_nanos(1_200),
            median: Duration::from_nanos(1_000),
            min: Duration::from_nanos(900),
            max: Duration::from_nanos(2_000),
            iterations: 42,
        };
        let path_str = path.to_str().expect("utf-8 temp path");
        export_measurement(path_str, "group/bench \"quoted\"", &m).expect("append");
        export_measurement(path_str, "group/other", &m).expect("append");
        let contents = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"group/bench \\\"quoted\\\"\",\"median_ns\":1000,\
             \"mean_ns\":1200,\"min_ns\":900,\"max_ns\":2000,\"iterations\":42}"
        );
        assert!(lines[1].starts_with("{\"name\":\"group/other\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("sort", 1024).name, "sort/1024");
        assert_eq!(BenchmarkId::from_parameter(64).name, "64");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
