//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal, deterministic implementation of the `rand` 0.8 API surface it
//! actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this workspace
//! only relies on determinism per seed, never on specific stream values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator (object-safe).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sampling a value of `T` from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval. Implemented per type and
/// lifted to ranges through single generic [`SampleRange`] impls, so type
/// inference resolves unsuffixed literals exactly as with upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 + 1 {
                    // Full-width inclusive range.
                    return <$t as StandardSample>::sample_standard(rng);
                }
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by widening multiply (Lemire, biased by at
/// most 2⁻⁶⁴ — irrelevant for simulation workloads, and deterministic).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let mul = (rng.next_u64() as u128) * span;
    (mul >> 64) as u64
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi {
                    <$t>::max(lo, <$t>::min(v, hi - (hi - lo) * <$t>::EPSILON))
                } else {
                    v
                }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform over
    /// the type's domain; `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 stream; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xD1B5_4A32_D192_ED03,
                    0xAEF1_7502_B3DD_9E33,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Placeholder for `rand::thread_rng` — intentionally unimplemented; all
/// workspace code seeds explicitly for reproducibility.
pub mod distributions {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn int_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100u32);
        assert!(v < 100);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
