//! Vendored stand-in for `tracing`.
//!
//! Provides leveled event macros (`error!` … `trace!`) dispatching through
//! a process-global [`Subscriber`], plus timing [`Span`]s carrying
//! structured key-value [`FieldValue`] fields and trace/span ids,
//! dispatching through a process-global [`SpanSink`]. Both channels share
//! the "zero-cost when disabled" property the engine's instrumentation
//! relies on: with no subscriber installed an event is a relaxed atomic
//! load and a branch, and with no span sink installed a span is a `None`
//! — no id allocation, no clock read, no field evaluation (the [`span!`]
//! macro evaluates field expressions only on the enabled path).
//!
//! Event verbosity can additionally be tuned per target with RUST_LOG
//! style [`Directives`] (`info,hetsched_core::campaign=debug,noisy=off`);
//! the target-specific rules also apply to spans, so a hot module's span
//! noise can be silenced without recompiling.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Event severity. Ordering matches upstream: `ERROR < WARN < INFO <
/// DEBUG < TRACE`, so `level <= max` means "verbose enough to show".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or serious failures.
    ERROR,
    /// Recoverable problems worth surfacing.
    WARN,
    /// High-level progress.
    INFO,
    /// Detailed diagnostic state.
    DEBUG,
    /// Very fine-grained tracing.
    TRACE,
}

impl Level {
    /// The canonical upper-case name (`"INFO"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::ERROR => "ERROR",
            Level::WARN => "WARN",
            Level::INFO => "INFO",
            Level::DEBUG => "DEBUG",
            Level::TRACE => "TRACE",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::ERROR => 1,
            Level::WARN => 2,
            Level::INFO => 3,
            Level::DEBUG => 4,
            Level::TRACE => 5,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`Level`] name or a [`Directives`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError {
    input: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level `{}` (expected error|warn|info|debug|trace, \
             optionally `target=level` directives separated by commas)",
            self.input
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::ERROR),
            "warn" | "warning" => Ok(Level::WARN),
            "info" => Ok(Level::INFO),
            "debug" => Ok(Level::DEBUG),
            "trace" => Ok(Level::TRACE),
            _ => Err(ParseLevelError {
                input: s.to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-target filtering.
// ---------------------------------------------------------------------------

/// RUST_LOG-style verbosity directives: a default [`Level`] plus
/// target-prefix overrides. `"info,hetsched_core::campaign=debug,sim=off"`
/// shows `info` everywhere except the campaign module (down to `debug`)
/// and anything under a `sim` module path (silenced entirely).
///
/// A rule matches a target when it equals the rule's prefix or continues
/// it at a `::` boundary; the longest matching prefix wins. The rules
/// also gate spans (see [`span_enabled_for`]) so per-module tuning covers
/// both channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directives {
    default: Level,
    /// `(target prefix, level)`; `None` silences the target entirely.
    rules: Vec<(String, Option<Level>)>,
}

impl Directives {
    /// Directives with only a default level and no per-target rules.
    pub fn new(default: Level) -> Self {
        Directives {
            default,
            rules: Vec::new(),
        }
    }

    /// Adds a per-target rule (`None` = off).
    pub fn with_target(mut self, prefix: impl Into<String>, level: Option<Level>) -> Self {
        self.rules.push((prefix.into(), level));
        self
    }

    /// The default level, for targets no rule matches.
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// Whether any per-target rules are present.
    pub fn has_rules(&self) -> bool {
        !self.rules.is_empty()
    }

    /// The most verbose level any target can reach — the coarse gate the
    /// macros check before consulting the rules.
    fn max_rank(&self) -> u8 {
        self.rules
            .iter()
            .filter_map(|(_, l)| l.map(Level::rank))
            .fold(self.default.rank(), u8::max)
    }

    /// The effective level for `target` (`None` = silenced): the longest
    /// matching prefix rule, falling back to the default.
    pub fn level_for(&self, target: &str) -> Option<Level> {
        self.rules
            .iter()
            .filter(|(prefix, _)| {
                target == prefix
                    || (target.starts_with(prefix.as_str())
                        && target[prefix.len()..].starts_with("::"))
            })
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(Some(self.default), |(_, level)| *level)
    }

    /// As [`Directives::level_for`], but ignoring the default: only an
    /// explicit per-target rule constrains the result. Used for spans,
    /// whose baseline verbosity is the span sink's own max level.
    fn rule_for(&self, target: &str) -> Option<Option<Level>> {
        self.rules
            .iter()
            .filter(|(prefix, _)| {
                target == prefix
                    || (target.starts_with(prefix.as_str())
                        && target[prefix.len()..].starts_with("::"))
            })
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, level)| *level)
    }
}

impl Default for Directives {
    fn default() -> Self {
        Directives::new(Level::INFO)
    }
}

impl FromStr for Directives {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut directives = Directives::new(Level::INFO);
        let mut saw_default = false;
        for token in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None => {
                    if saw_default {
                        return Err(ParseLevelError {
                            input: s.to_string(),
                        });
                    }
                    directives.default = token.parse()?;
                    saw_default = true;
                }
                Some((target, level)) => {
                    let target = target.trim();
                    let level = level.trim();
                    if target.is_empty() {
                        return Err(ParseLevelError {
                            input: s.to_string(),
                        });
                    }
                    let level = if level.eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Some(level.parse()?)
                    };
                    directives.rules.push((target.to_string(), level));
                }
            }
        }
        Ok(directives)
    }
}

impl fmt::Display for Directives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.default.as_str().to_ascii_lowercase())?;
        for (prefix, level) in &self.rules {
            match level {
                Some(level) => write!(f, ",{prefix}={}", level.as_str().to_ascii_lowercase())?,
                None => write!(f, ",{prefix}=off")?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Events.
// ---------------------------------------------------------------------------

/// Receives events from the macros. Installed once per process.
pub trait Subscriber: Send + Sync {
    /// Handles one event.
    fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>);
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
/// 0 = disabled (no subscriber); otherwise the max enabled `Level::rank`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static FILTER: OnceLock<Directives> = OnceLock::new();

/// Installs the process-global subscriber. Events at levels above
/// `max_level` are dropped before reaching it.
///
/// # Errors
///
/// A subscriber was already installed.
pub fn set_global_subscriber(
    max_level: Level,
    subscriber: Box<dyn Subscriber>,
) -> Result<(), SetGlobalError> {
    set_global_subscriber_with(Directives::new(max_level), subscriber)
}

/// Installs the process-global subscriber with per-target [`Directives`].
///
/// # Errors
///
/// A subscriber was already installed.
pub fn set_global_subscriber_with(
    directives: Directives,
    subscriber: Box<dyn Subscriber>,
) -> Result<(), SetGlobalError> {
    SUBSCRIBER.set(subscriber).map_err(|_| SetGlobalError(()))?;
    let max = directives.max_rank();
    let _ = FILTER.set(directives);
    MAX_LEVEL.store(max, Ordering::Release);
    Ok(())
}

/// Error: a global subscriber (or span sink) was already installed.
#[derive(Debug)]
pub struct SetGlobalError(());

impl fmt::Display for SetGlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalError {}

/// Whether an event at `level` could reach the subscriber under *some*
/// target — the coarse (target-agnostic) gate.
#[inline]
pub fn enabled(level: Level) -> bool {
    level.rank() <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether an event at `level` from `target` would reach the subscriber,
/// per-target directives included.
#[inline]
pub fn enabled_for(level: Level, target: &str) -> bool {
    if !enabled(level) {
        return false;
    }
    match FILTER.get() {
        Some(directives) if directives.has_rules() => directives
            .level_for(target)
            .is_some_and(|max| level.rank() <= max.rank()),
        _ => true,
    }
}

#[doc(hidden)]
pub mod __private {
    use super::{enabled_for, Level, SUBSCRIBER};

    #[inline]
    pub fn emit(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
        if !enabled_for(level, target) {
            return;
        }
        if let Some(subscriber) = SUBSCRIBER.get() {
            subscriber.event(level, target, message);
        }
    }
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// A structured field value attached to a [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// The identity of a span: the trace it belongs to plus its own id.
/// Copyable and `Send`, so it can cross threads to parent child spans
/// explicitly ([`Span::child_of`]) where thread-locals cannot follow
/// (rayon workers, watchdog threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    trace_id: u64,
    span_id: u64,
}

impl SpanContext {
    /// The absent context: spans created under it start a new trace.
    pub const NONE: SpanContext = SpanContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this is [`SpanContext::NONE`].
    pub fn is_none(self) -> bool {
        self.span_id == 0
    }

    /// The trace id (0 when none).
    pub fn trace_id(self) -> u64 {
        self.trace_id
    }

    /// The span id (0 when none).
    pub fn span_id(self) -> u64 {
        self.span_id
    }
}

/// A completed span, delivered to the [`SpanSink`] when the [`Span`]
/// drops.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedSpan {
    /// Trace (root-span lineage) id, shared by a whole causal tree.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// The parent span's id, absent for roots.
    pub parent_id: Option<u64>,
    /// The span's static name (`"cell"`, `"generation"`, ...).
    pub name: &'static str,
    /// The emitting module path.
    pub target: &'static str,
    /// Severity the span was created at.
    pub level: Level,
    /// Start time in nanoseconds since the sink's installation epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Small per-process thread number (first-use order, starting at 1).
    pub thread: u64,
    /// Structured key-value fields, in attachment order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Receives completed spans. Installed once per process.
pub trait SpanSink: Send + Sync {
    /// Handles one completed span.
    fn on_span(&self, span: ClosedSpan);

    /// Flushes any buffering (e.g. before process exit). Default no-op.
    fn flush(&self) {}
}

static SPAN_SINK: OnceLock<Box<dyn SpanSink>> = OnceLock::new();
/// 0 = disabled (no sink); otherwise the max enabled span `Level::rank`.
static MAX_SPAN_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Process-unique id source for spans and traces (0 is reserved = none).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// The instant `start_ns` values are measured from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// The span the current thread is inside of, for implicit parenting.
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
    /// Small dense per-thread number for timeline lanes.
    static THREAD_NUM: Cell<u64> = const { Cell::new(0) };
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn thread_num() -> u64 {
    THREAD_NUM.with(|cell| {
        let mut n = cell.get();
        if n == 0 {
            n = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            cell.set(n);
        }
        n
    })
}

/// Installs the process-global span sink. Spans at levels above
/// `max_level` are never created.
///
/// # Errors
///
/// A span sink was already installed.
pub fn set_span_sink(max_level: Level, sink: Box<dyn SpanSink>) -> Result<(), SetGlobalError> {
    SPAN_SINK.set(sink).map_err(|_| SetGlobalError(()))?;
    let _ = EPOCH.set(Instant::now());
    MAX_SPAN_LEVEL.store(max_level.rank(), Ordering::Release);
    Ok(())
}

/// Flushes the installed span sink, if any.
pub fn flush_span_sink() {
    if let Some(sink) = SPAN_SINK.get() {
        sink.flush();
    }
}

/// Whether a span at `level` would be recorded — the coarse gate (one
/// relaxed atomic load).
#[inline]
pub fn span_enabled(level: Level) -> bool {
    level.rank() <= MAX_SPAN_LEVEL.load(Ordering::Relaxed)
}

/// Whether a span at `level` from `target` would be recorded: the coarse
/// gate plus any *explicit* per-target directive rule. The directives'
/// default level does not apply — the span baseline is the sink's own
/// max level — so `--log-level warn --trace-out t.jsonl` still records
/// spans, while `--log-level info,hetsched_moea=off` silences both the
/// engine's events and its spans.
#[inline]
pub fn span_enabled_for(level: Level, target: &str) -> bool {
    if !span_enabled(level) {
        return false;
    }
    match FILTER.get() {
        Some(directives) if directives.has_rules() => match directives.rule_for(target) {
            Some(Some(max)) => level.rank() <= max.rank(),
            Some(None) => false,
            None => true,
        },
        _ => true,
    }
}

/// The current thread's innermost entered span context
/// ([`SpanContext::NONE`] outside any span).
pub fn current_span() -> SpanContext {
    CURRENT.with(Cell::get)
}

struct SpanInner {
    ctx: SpanContext,
    parent_id: Option<u64>,
    name: &'static str,
    target: &'static str,
    level: Level,
    start: Instant,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An in-flight timing span. Created through [`Span::new`] /
/// [`Span::child_of`] / [`span!`]; completed (and delivered to the
/// [`SpanSink`]) on drop. When span recording is disabled the struct is
/// an inert `None` — one machine word, no clock read.
#[must_use = "a span measures the time until it is dropped"]
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

impl Span {
    /// A span parented to the current thread's entered span (a new trace
    /// root when there is none).
    pub fn new(level: Level, target: &'static str, name: &'static str) -> Span {
        if !span_enabled_for(level, target) {
            return Span { inner: None };
        }
        Self::build(level, target, name, current_span())
    }

    /// A span explicitly parented to `parent` — the cross-thread form
    /// (`parent` may be [`SpanContext::NONE`] to start a new trace).
    pub fn child_of(
        parent: SpanContext,
        level: Level,
        target: &'static str,
        name: &'static str,
    ) -> Span {
        if !span_enabled_for(level, target) {
            return Span { inner: None };
        }
        Self::build(level, target, name, parent)
    }

    /// An always-root span (a fresh trace id), regardless of the current
    /// thread's context.
    pub fn root(level: Level, target: &'static str, name: &'static str) -> Span {
        Span::child_of(SpanContext::NONE, level, target, name)
    }

    /// The inert span: never recorded, children of it start new traces.
    pub fn none() -> Span {
        Span { inner: None }
    }

    fn build(level: Level, target: &'static str, name: &'static str, parent: SpanContext) -> Span {
        let span_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent_id) = if parent.is_none() {
            (NEXT_ID.fetch_add(1, Ordering::Relaxed), None)
        } else {
            (parent.trace_id, Some(parent.span_id))
        };
        let epoch = EPOCH.get_or_init(Instant::now);
        let start = Instant::now();
        Span {
            inner: Some(Box::new(SpanInner {
                ctx: SpanContext { trace_id, span_id },
                parent_id,
                name,
                target,
                level,
                start,
                start_ns: start.duration_since(*epoch).as_nanos() as u64,
                fields: Vec::new(),
            })),
        }
    }

    /// Whether this span is actually being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's identity, for explicit cross-thread parenting
    /// ([`SpanContext::NONE`] when disabled).
    pub fn context(&self) -> SpanContext {
        self.inner
            .as_ref()
            .map_or(SpanContext::NONE, |inner| inner.ctx)
    }

    /// Attaches a field (builder form). Prefer guarding costly value
    /// construction with [`Span::is_enabled`] — the [`span!`] macro does.
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.record(key, value);
        self
    }

    /// Attaches a field to an in-flight span. No-op when disabled.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }

    /// Makes this span the current thread's context until the returned
    /// guard drops. Entering an inert span clears the context (children
    /// created meanwhile start new traces — they'd be unrecorded anyway).
    pub fn enter(&self) -> Entered<'_> {
        let prev = current_span();
        CURRENT.with(|cell| cell.set(self.context()));
        Entered {
            prev,
            _span: std::marker::PhantomData,
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Span(disabled)"),
            Some(inner) => f
                .debug_struct("Span")
                .field("name", &inner.name)
                .field("trace_id", &inner.ctx.trace_id)
                .field("span_id", &inner.ctx.span_id)
                .finish(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let Some(sink) = SPAN_SINK.get() else {
            return;
        };
        sink.on_span(ClosedSpan {
            trace_id: inner.ctx.trace_id,
            span_id: inner.ctx.span_id,
            parent_id: inner.parent_id,
            name: inner.name,
            target: inner.target,
            level: inner.level,
            start_ns: inner.start_ns,
            duration_ns: inner.start.elapsed().as_nanos() as u64,
            thread: thread_num(),
            fields: inner.fields,
        });
    }
}

/// Guard restoring the previous thread-current span on drop.
pub struct Entered<'a> {
    prev: SpanContext,
    _span: std::marker::PhantomData<&'a Span>,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        CURRENT.with(|cell| cell.set(self.prev));
    }
}

/// Creates a [`Span`] named `$name` at `$level`, targeted at the calling
/// module, with optional `key = value` fields. Field value expressions
/// are evaluated only when the span is actually recorded.
///
/// ```
/// let span = tracing::span!(tracing::Level::INFO, "cell", replicate = 3usize);
/// let _guard = span.enter();
/// ```
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr) => {
        $crate::Span::new($level, module_path!(), $name)
    };
    ($level:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let __span = $crate::Span::new($level, module_path!(), $name);
        if __span.is_enabled() {
            __span$(.with(stringify!($key), $value))+
        } else {
            __span
        }
    }};
}

/// Emits an event at the given level with a format-string message.
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)+) => {
        $crate::__private::emit($level, module_path!(), format_args!($($arg)+))
    };
}

/// Emits an `ERROR`-level event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

/// Emits a `WARN`-level event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

/// Emits an `INFO`-level event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

/// Emits a `DEBUG`-level event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

/// Emits a `TRACE`-level event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::ERROR < Level::TRACE);
        assert!(Level::INFO < Level::DEBUG);
        assert_eq!("info".parse::<Level>().unwrap(), Level::INFO);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::WARN);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn disabled_by_default() {
        // No subscriber installed in this test binary: everything is off.
        assert!(!enabled(Level::ERROR));
        // Macros must still compile and be callable.
        info!("no-op {}", 1);
        error!("also a no-op");
    }

    #[test]
    fn directives_parse_and_filter() {
        let d: Directives = "warn,hetsched_core::campaign=debug,noisy=off"
            .parse()
            .unwrap();
        assert_eq!(d.default_level(), Level::WARN);
        assert_eq!(d.level_for("hetsched_cli"), Some(Level::WARN));
        assert_eq!(d.level_for("hetsched_core::campaign"), Some(Level::DEBUG));
        assert_eq!(
            d.level_for("hetsched_core::campaign::inner"),
            Some(Level::DEBUG)
        );
        // `campaigner` must NOT match the `campaign` prefix.
        assert_eq!(d.level_for("hetsched_core::campaigner"), Some(Level::WARN));
        assert_eq!(d.level_for("noisy::sub"), None);
        assert_eq!(d.max_rank(), Level::DEBUG.rank());
        // Round-trip through Display.
        assert_eq!(d.to_string().parse::<Directives>().unwrap(), d, "{d}");
    }

    #[test]
    fn directives_longest_prefix_wins_and_rejects_junk() {
        let d: Directives = "info,a=off,a::b=trace".parse().unwrap();
        assert_eq!(d.level_for("a::c"), None);
        assert_eq!(d.level_for("a::b::c"), Some(Level::TRACE));
        assert!("info,=debug".parse::<Directives>().is_err());
        assert!("info,debug".parse::<Directives>().is_err());
        assert!("x=loud".parse::<Directives>().is_err());
        let bare: Directives = "debug".parse().unwrap();
        assert_eq!(bare.default_level(), Level::DEBUG);
        assert!(!bare.has_rules());
    }

    #[test]
    fn spans_disabled_are_inert() {
        // No span sink is ever installed in this binary's unit tests (the
        // sink-driven tests live in tests/spans.rs, a separate process).
        assert!(!span_enabled(Level::ERROR));
        let span = span!(Level::INFO, "nothing", key = 1u64);
        assert!(!span.is_enabled());
        assert!(span.context().is_none());
        let _guard = span.enter();
        assert!(current_span().is_none());
    }
}
