//! Vendored stand-in for `tracing`.
//!
//! Provides leveled event macros (`error!` … `trace!`) dispatching through
//! a process-global [`Subscriber`]. Events carry a level, the emitting
//! module path as target, and a formatted message. With no subscriber
//! installed every event is a cheap atomic load and a branch — the
//! "zero-cost when disabled" property the engine's instrumentation relies
//! on.
//!
//! Structured key-value fields and spans are not implemented; callers use
//! format-string messages.

#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Event severity. Ordering matches upstream: `ERROR < WARN < INFO <
/// DEBUG < TRACE`, so `level <= max` means "verbose enough to show".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or serious failures.
    ERROR,
    /// Recoverable problems worth surfacing.
    WARN,
    /// High-level progress.
    INFO,
    /// Detailed diagnostic state.
    DEBUG,
    /// Very fine-grained tracing.
    TRACE,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::ERROR => "ERROR",
            Level::WARN => "WARN",
            Level::INFO => "INFO",
            Level::DEBUG => "DEBUG",
            Level::TRACE => "TRACE",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::ERROR => 1,
            Level::WARN => 2,
            Level::INFO => 3,
            Level::DEBUG => 4,
            Level::TRACE => 5,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`Level`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError {
    input: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level `{}` (expected error|warn|info|debug|trace)",
            self.input
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::ERROR),
            "warn" | "warning" => Ok(Level::WARN),
            "info" => Ok(Level::INFO),
            "debug" => Ok(Level::DEBUG),
            "trace" => Ok(Level::TRACE),
            _ => Err(ParseLevelError {
                input: s.to_string(),
            }),
        }
    }
}

/// Receives events from the macros. Installed once per process.
pub trait Subscriber: Send + Sync {
    /// Handles one event.
    fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>);
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
/// 0 = disabled (no subscriber); otherwise the max enabled `Level::rank`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Installs the process-global subscriber. Events at levels above
/// `max_level` are dropped before reaching it.
///
/// # Errors
///
/// A subscriber was already installed.
pub fn set_global_subscriber(
    max_level: Level,
    subscriber: Box<dyn Subscriber>,
) -> Result<(), SetGlobalError> {
    SUBSCRIBER.set(subscriber).map_err(|_| SetGlobalError(()))?;
    MAX_LEVEL.store(max_level.rank(), Ordering::Release);
    Ok(())
}

/// Error: a global subscriber was already installed.
#[derive(Debug)]
pub struct SetGlobalError(());

impl fmt::Display for SetGlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalError {}

/// Whether an event at `level` would reach the subscriber.
#[inline]
pub fn enabled(level: Level) -> bool {
    level.rank() <= MAX_LEVEL.load(Ordering::Relaxed)
}

#[doc(hidden)]
pub mod __private {
    use super::{enabled, Level, SUBSCRIBER};

    #[inline]
    pub fn emit(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
        if !enabled(level) {
            return;
        }
        if let Some(subscriber) = SUBSCRIBER.get() {
            subscriber.event(level, target, message);
        }
    }
}

/// Emits an event at the given level with a format-string message.
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)+) => {
        $crate::__private::emit($level, module_path!(), format_args!($($arg)+))
    };
}

/// Emits an `ERROR`-level event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

/// Emits a `WARN`-level event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

/// Emits an `INFO`-level event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

/// Emits a `DEBUG`-level event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

/// Emits a `TRACE`-level event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::ERROR < Level::TRACE);
        assert!(Level::INFO < Level::DEBUG);
        assert_eq!("info".parse::<Level>().unwrap(), Level::INFO);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::WARN);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn disabled_by_default() {
        // No subscriber installed in this test binary: everything is off.
        assert!(!enabled(Level::ERROR));
        // Macros must still compile and be callable.
        info!("no-op {}", 1);
        error!("also a no-op");
    }
}
