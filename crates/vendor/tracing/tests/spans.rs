//! Span-sink behaviour, in its own process so installing the global sink
//! cannot race the crate's "disabled by default" unit tests.

use std::sync::{Mutex, OnceLock};
use tracing::{
    current_span, span, span_enabled, span_enabled_for, ClosedSpan, Directives, FieldValue, Level,
    Span, SpanSink,
};

struct Collect(Mutex<Vec<ClosedSpan>>);

impl SpanSink for Collect {
    fn on_span(&self, span: ClosedSpan) {
        self.0.lock().unwrap().push(span);
    }
}

static COLLECTED: OnceLock<&'static Collect> = OnceLock::new();

fn install() -> &'static Collect {
    COLLECTED.get_or_init(|| {
        let collect: &'static Collect = Box::leak(Box::new(Collect(Mutex::new(Vec::new()))));
        struct Fwd(&'static Collect);
        impl SpanSink for Fwd {
            fn on_span(&self, span: ClosedSpan) {
                self.0.on_span(span);
            }
        }
        // Directives with a per-target `off` rule: events default to warn,
        // the `muted` prefix is silenced for events AND spans.
        struct Quiet;
        impl tracing::Subscriber for Quiet {
            fn event(&self, _: Level, _: &str, _: std::fmt::Arguments<'_>) {}
        }
        let directives: Directives = "warn,muted=off".parse().unwrap();
        tracing::set_global_subscriber_with(directives, Box::new(Quiet)).unwrap();
        tracing::set_span_sink(Level::DEBUG, Box::new(Fwd(collect))).unwrap();
        collect
    })
}

#[test]
fn spans_record_lineage_fields_and_timing() {
    let collect = install();
    let root = span!(Level::INFO, "root", answer = 42u64);
    assert!(root.is_enabled());
    let root_ctx = root.context();
    {
        let _g = root.enter();
        assert_eq!(current_span(), root_ctx);
        let child = span!(Level::DEBUG, "child", label = "x");
        assert_eq!(child.context().trace_id(), root_ctx.trace_id());
        drop(child);
    }
    assert!(current_span().is_none());
    drop(root);
    let spans = collect.0.lock().unwrap();
    let child = spans
        .iter()
        .find(|s| s.name == "child" && s.trace_id == root_ctx.trace_id())
        .expect("child recorded");
    assert_eq!(child.parent_id, Some(root_ctx.span_id()));
    assert_eq!(child.fields, vec![("label", FieldValue::Str("x".into()))]);
    let root = spans
        .iter()
        .find(|s| s.span_id == root_ctx.span_id())
        .expect("root recorded");
    assert_eq!(root.parent_id, None);
    assert_eq!(root.fields, vec![("answer", FieldValue::U64(42))]);
    // The child nests inside the root in time.
    assert!(root.duration_ns >= child.duration_ns);
    assert!(child.start_ns >= root.start_ns);
}

#[test]
fn explicit_cross_thread_parenting() {
    let collect = install();
    let root = Span::root(Level::INFO, "t", "xthread-root");
    let ctx = root.context();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let child = Span::child_of(ctx, Level::INFO, "t", "xthread-child");
            assert_eq!(child.context().trace_id(), ctx.trace_id());
        });
    });
    drop(root);
    let spans = collect.0.lock().unwrap();
    let child = spans
        .iter()
        .find(|s| s.name == "xthread-child")
        .expect("recorded");
    assert_eq!(child.parent_id, Some(ctx.span_id()));
    let root = spans.iter().find(|s| s.name == "xthread-root").unwrap();
    assert_ne!(child.thread, root.thread);
}

#[test]
fn sink_level_and_target_rules_gate_spans() {
    let collect = install();
    // Sink max level is DEBUG: TRACE-level spans are never created.
    assert!(span_enabled(Level::DEBUG));
    assert!(!span_enabled(Level::TRACE));
    let too_fine = Span::root(Level::TRACE, "t", "too-fine");
    assert!(!too_fine.is_enabled());
    drop(too_fine);
    // The `muted=off` directive silences spans from that target, while
    // the directives' default (warn) does NOT cap spans — the sink's own
    // max level is the span baseline.
    assert!(!span_enabled_for(Level::ERROR, "muted::hot"));
    assert!(span_enabled_for(Level::DEBUG, "elsewhere"));
    let muted = Span::child_of(tracing::SpanContext::NONE, Level::ERROR, "muted::hot", "m");
    assert!(!muted.is_enabled());
    drop(muted);
    let spans = collect.0.lock().unwrap();
    assert!(spans.iter().all(|s| s.name != "too-fine" && s.name != "m"));
}

#[test]
fn event_macros_respect_target_directives() {
    install();
    // Default warn: info disabled coarsely for unknown targets.
    assert!(tracing::enabled_for(Level::WARN, "anything"));
    assert!(!tracing::enabled_for(Level::INFO, "anything"));
    assert!(!tracing::enabled_for(Level::ERROR, "muted"));
    assert!(!tracing::enabled_for(Level::ERROR, "muted::sub"));
    // `mutedx` is not under the `muted` prefix.
    assert!(tracing::enabled_for(Level::WARN, "mutedx"));
}
