//! Vendored stand-in for `proptest`.
//!
//! Supplies the property-testing surface this workspace uses — range and
//! tuple strategies, `prop::collection::vec`, `prop_map`/`prop_flat_map`,
//! the `proptest!`/`prop_assert!` macros, and `ProptestConfig::with_cases` —
//! generating inputs from a deterministic per-test RNG (seeded by hashing
//! the test name, so runs are reproducible).
//!
//! Differences from upstream, acceptable for this workspace's tests:
//! failing cases are **not shrunk** (the panic message carries the case
//! index so a failure is still reproducible), and there is no persistence
//! of failing seeds.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter mapping generated values through a closure.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter chaining into a dependent strategy.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

/// Everything a test file needs: traits, config, macros, and the `prop`
/// module alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[doc(hidden)]
pub mod __private {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test name: a stable per-test base seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let base = $crate::__private::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = <$crate::__private::StdRng as $crate::__private::SeedableRng>
                    ::seed_from_u64(base ^ case.wrapping_mul(0x9E3779B97F4A7C15));
                $(let $binding = ($strategy).sample(&mut rng);)+
                // As upstream: the body may `return Ok(())` early or just
                // fall off the end.
                let run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                // A panic in `body` (from prop_assert! or any assert) fails
                // the test; report which case for reproducibility.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => panic!(
                        "proptest case {case}/{} failed for {}: {msg}",
                        config.cases,
                        stringify!($name),
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {case}/{} failed for {}",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_range() {
        use crate::__private::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..8).sample(&mut rng);
            assert!((3..8).contains(&n));
            let (a, b) = (0u64..10, -5i64..5).sample(&mut rng);
            assert!(a < 10 && (-5..5).contains(&b));
            let v = prop::collection::vec(0.0f64..1.0, 2..6).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            let fixed = prop::collection::vec(0.0f64..1.0, 4usize).sample(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        use crate::__private::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(2);
        let s = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n * 2).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n * 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_tests(x in 0u64..100, ys in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            for y in ys {
                prop_assert!((0.0..1.0).contains(&y), "y = {y}");
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(a in 0.1f64..5.0) {
            prop_assert!(a >= 0.1);
        }
    }
}
