//! Vendored stand-in for `tracing-subscriber`.
//!
//! Provides the `fmt()` builder the CLI uses to route `tracing` events to
//! stderr: `tracing_subscriber::fmt().with_max_level(level).init()`.
//! Each event prints as `LEVEL target: message` prefixed with the elapsed
//! time since subscriber installation. Per-target verbosity is available
//! through [`SubscriberBuilder::with_directives`] (RUST_LOG-style
//! `default,target=level` rules, parsed by [`tracing::Directives`]).

#![warn(missing_docs)]

use std::fmt::Arguments;
use std::io::Write;
use std::time::Instant;

use tracing::{Directives, Level, Subscriber};

/// Starts building an stderr formatting subscriber.
pub fn fmt() -> SubscriberBuilder {
    SubscriberBuilder {
        directives: Directives::new(Level::INFO),
    }
}

/// Configures and installs the stderr subscriber.
#[derive(Debug, Clone)]
pub struct SubscriberBuilder {
    directives: Directives,
}

impl SubscriberBuilder {
    /// Sets the most verbose level that will be printed (for every
    /// target; replaces any per-target rules set so far).
    pub fn with_max_level(mut self, level: Level) -> Self {
        self.directives = Directives::new(level);
        self
    }

    /// Sets the full per-target filter (default level plus
    /// `target=level` rules).
    pub fn with_directives(mut self, directives: Directives) -> Self {
        self.directives = directives;
        self
    }

    /// Accepted for API compatibility; the shim always writes to stderr.
    pub fn with_writer<W>(self, _writer: W) -> Self {
        self
    }

    /// Installs this subscriber globally, panicking if one exists —
    /// matching upstream `init()` semantics.
    pub fn init(self) {
        self.try_init()
            .expect("global tracing subscriber already installed");
    }

    /// Installs this subscriber globally.
    ///
    /// # Errors
    ///
    /// A subscriber was already installed.
    pub fn try_init(self) -> Result<(), tracing::SetGlobalError> {
        tracing::set_global_subscriber_with(
            self.directives,
            Box::new(StderrSubscriber {
                start: Instant::now(),
            }),
        )
    }
}

struct StderrSubscriber {
    start: Instant,
}

impl Subscriber for StderrSubscriber {
    fn event(&self, level: Level, target: &str, message: Arguments<'_>) {
        let elapsed = self.start.elapsed();
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        // One write per event keeps lines whole under parallel populations.
        let _ = writeln!(
            out,
            "{:>10.6}s {:>5} {}: {}",
            elapsed.as_secs_f64(),
            level,
            target,
            message
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_configures_and_installs_once() {
        let directives: Directives = "debug,quiet_module=off".parse().unwrap();
        let b = fmt()
            .with_directives(directives)
            .with_writer(std::io::stderr);
        b.try_init().expect("first install succeeds");
        assert!(tracing::enabled(Level::DEBUG));
        assert!(!tracing::enabled(Level::TRACE));
        assert!(tracing::enabled_for(Level::DEBUG, "elsewhere"));
        assert!(!tracing::enabled_for(Level::ERROR, "quiet_module"));
        tracing::debug!("event after install: {}", 42);
        assert!(fmt().try_init().is_err(), "second install is rejected");
    }
}
