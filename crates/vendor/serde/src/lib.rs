//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the serde API surface the workspace uses, built around an explicit
//! [`Value`] data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] / [`Serializer`] and [`Deserialize`] / [`Deserializer`]
//!   traits with upstream-compatible signatures (generic `serialize<S>`,
//!   `deserialize<'de, D>`, associated `Ok`/`Error` types) so hand-written
//!   adapters like `#[serde(with = "...")]` modules compile unchanged;
//! * `#[derive(Serialize, Deserialize)]` re-exported from the companion
//!   `serde_derive` proc-macro crate, supporting named structs (including
//!   `#[serde(skip)]` and `#[serde(with = "module")]` fields), tuple
//!   structs, and unit-variant enums — the only shapes in this workspace;
//! * impls for the std types the workspace serialises (integers, floats,
//!   `bool`, `String`, `Option`, `Vec`, slices).
//!
//! JSON text encoding/decoding lives in the companion `serde_json` shim.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number: integers keep their exact representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy above 2⁵³).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

/// The self-describing data model every type serialises into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The unsigned integer content, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(v)) => Some(*v),
            Value::Num(Number::I(v)) if *v >= 0 => Some(*v as u64),
            Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short human description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// The concrete error produced by [`ValueDeserializer`] and friends.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Deserialization-side traits and errors.
pub mod de {
    use std::fmt::Display;

    /// Errors a deserializer can report (mirror of `serde::de::Error`).
    pub trait Error: Sized + Display {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error {
                msg: msg.to_string(),
            }
        }
    }
}

/// Serialization-side traits (mirror of `serde::ser`).
pub mod ser {
    /// Marker for serializer errors. The shim's serializers are infallible,
    /// so this carries no requirements.
    pub trait Error {}
    impl Error for std::convert::Infallible {}
    impl Error for super::Error {}
}

/// A data format a [`Serialize`] type can write itself into.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error;

    /// Consumes one fully-built [`Value`].
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format a [`Deserialize`] type can read itself from.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Yields the input as one self-describing [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can serialise itself into any [`Serializer`].
pub trait Serialize {
    /// Serialises `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can deserialise itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialises a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserialisable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The canonical serializer: produces a [`Value`], never fails.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

/// The canonical deserializer: reads from an owned [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

/// Serialises any value into the [`Value`] data model (cannot fail).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Deserialises a type from a [`Value`].
///
/// # Errors
///
/// Shape or domain mismatches between the value and the target type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Num(Number::U(*self as u64)))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let num = if v >= 0 { Number::U(v as u64) } else { Number::I(v) };
                serializer.serialize_value(Value::Num(num))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Num(Number::F(*self)))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Num(Number::F(*self as f64)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_value(to_value(v)),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

fn type_error<E: de::Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = v.as_u64().ok_or_else(|| type_error::<D::Error>("unsigned integer", &v))?;
                <$t>::try_from(n).map_err(|_| de::Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: i64 = match &v {
                    Value::Num(Number::I(i)) => *i,
                    Value::Num(Number::U(u)) => i64::try_from(*u)
                        .map_err(|_| de::Error::custom(format!("{u} out of range for i64")))?,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 => *f as i64,
                    other => return Err(type_error::<D::Error>("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_f64()
            .ok_or_else(|| type_error::<D::Error>("number", &v))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| type_error::<D::Error>("number", &v))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error::<D::Error>("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error::<D::Error>("string", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other)
                .map(Some)
                .map_err(|e| de::Error::custom(e)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(|e| de::Error::custom(e)))
                .collect(),
            other => Err(type_error::<D::Error>("array", &other)),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

/// Helpers used by generated derive code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{de, Value};
    pub use super::{from_value, to_value, ValueDeserializer, ValueSerializer};

    /// Unwraps a value into its object entries, or reports a type error.
    pub fn into_object<E: de::Error>(
        value: Value,
        type_name: &str,
    ) -> Result<Vec<(String, Value)>, E> {
        match value {
            Value::Object(entries) => Ok(entries),
            other => Err(E::custom(format!(
                "expected object for {type_name}, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps a value into its array elements, or reports a type error.
    pub fn into_array<E: de::Error>(value: Value, type_name: &str) -> Result<Vec<Value>, E> {
        match value {
            Value::Array(items) => Ok(items),
            other => Err(E::custom(format!(
                "expected array for {type_name}, found {}",
                other.kind()
            ))),
        }
    }

    /// Removes and returns the named field from an object's entries.
    pub fn take_field<E: de::Error>(
        entries: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<Value, E> {
        match entries.iter().position(|(k, _)| k == name) {
            Some(i) => Ok(entries.swap_remove(i).1),
            None => Err(E::custom(format!("missing field `{name}`"))),
        }
    }

    /// Removes and deserialises the named field.
    pub fn from_field<T: super::DeserializeOwned, E: de::Error>(
        entries: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, E> {
        let value = take_field::<E>(entries, name)?;
        super::from_value(value).map_err(|e| E::custom(format!("field `{name}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(from_value::<u16>(to_value(&7u16)).unwrap(), 7);
        assert_eq!(from_value::<i64>(to_value(&-9i64)).unwrap(), -9);
        assert_eq!(from_value::<f64>(to_value(&1.25f64)).unwrap(), 1.25);
        assert_eq!(from_value::<bool>(to_value(&true)).unwrap(), true);
        assert_eq!(from_value::<String>(to_value("hi")).unwrap(), "hi");
        assert_eq!(
            from_value::<Option<u8>>(to_value(&None::<u8>)).unwrap(),
            None
        );
        assert_eq!(
            from_value::<Option<u8>>(to_value(&Some(3u8))).unwrap(),
            Some(3)
        );
        let xs = vec![1.0f64, f64::INFINITY];
        let back: Vec<f64> = from_value(to_value(&xs)).unwrap();
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_infinite());
    }

    #[test]
    fn integer_range_checks() {
        assert!(from_value::<u8>(to_value(&300u16)).is_err());
        assert!(from_value::<u32>(to_value(&-1i32)).is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(from_value::<bool>(to_value(&1u8)).is_err());
        assert!(from_value::<Vec<f64>>(to_value("nope")).is_err());
        assert!(from_value::<String>(to_value(&1.0f64)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::Num(Number::U(1)))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
        assert_eq!(v.kind(), "object");
    }
}
