//! Vendored stand-in for `serde_json`.
//!
//! Encodes/decodes JSON text over the vendored `serde` crate's [`Value`]
//! data model. Provides the workspace's used surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Floats are printed with Rust's shortest-roundtrip `Display`, matching the
//! upstream `float_roundtrip` feature the workspace enables. Non-finite
//! floats print as `null`, like upstream.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Number, Serialize};

/// Error from JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    /// 1-based line of the error, when known.
    line: usize,
    /// 1-based column of the error, when known.
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    fn at(msg: impl Into<String>, text: &str, offset: usize) -> Self {
        let prefix = &text[..offset.min(text.len())];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = prefix.rfind('\n').map(|p| offset - p).unwrap_or(offset + 1);
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialises a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> std::result::Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> std::result::Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Malformed JSON, trailing input, or a shape mismatch with `T`.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> std::result::Result<T, Error> {
    let value = parse(text)?;
    serde::from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(f) if !f.is_finite() => out.push_str("null"),
        Number::F(f) => {
            // Match upstream: integral floats keep a `.0` so they parse back
            // as floats.
            if f == f.trunc() && f.abs() < 1e16 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
fn parse(text: &str) -> std::result::Result<Value, Error> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", text, p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        Error::at(msg, self.text, self.pos)
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> std::result::Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(&b) => Err(self.error(format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> std::result::Result<Value, Error> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> std::result::Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> std::result::Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.text[self.pos..].starts_with("\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = &self.text[self.pos..];
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> std::result::Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = &self.text[self.pos..end];
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> std::result::Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = &self.text[start..self.pos];
        if !is_float {
            if let Ok(u) = token.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        token
            .parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::at(format!("invalid number `{token}`"), self.text, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_printing() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Number::U(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![(
            "k".into(),
            Value::Array(vec![Value::Num(Number::U(1))]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_roundtrip() {
        for &f in &[0.1, 1.0, -2.5e-8, 123456.789, 1.0 / 3.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
        // Non-finite floats serialise as null, as in upstream serde_json.
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_document() {
        let v: Value = from_str(r#" {"xs": [1, -2, 3.5], "s": "A\n", "n": null} "#).unwrap();
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("A\n"));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("[] trailing").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1.5f64, 2.0, 3.25];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
