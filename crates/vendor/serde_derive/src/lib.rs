//! Vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the companion vendored `serde` crate's [`Value`]-based data model. No
//! `syn`/`quote` (unavailable offline): the item is parsed by walking the
//! raw token trees, and code is generated as strings.
//!
//! Supported shapes — the complete set used in this workspace:
//!
//! * structs with named fields, honouring `#[serde(skip)]` (field omitted on
//!   write, `Default::default()` on read) and `#[serde(with = "module")]`
//!   (delegates to `module::serialize` / `module::deserialize`);
//! * tuple structs (newtypes serialise transparently as their inner value;
//!   wider tuples as arrays);
//! * enums whose variants are all unit-like (serialised as the variant name
//!   string, serde's externally-tagged unit representation).
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming this file, so a future need is an explicit decision rather
//! than silent breakage.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field metadata extracted from `#[serde(...)]` attributes.
#[derive(Debug, Clone, Default)]
struct FieldAttr {
    skip: bool,
    with: Option<String>,
}

/// One enum variant: unit (`A`) or struct-like (`A { x: T }`).
struct Variant {
    name: String,
    /// `None` for unit variants; field names for struct variants.
    fields: Option<Vec<String>>,
}

/// The parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Vec<(String, FieldAttr)>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for (field, attr) in fields {
                if attr.skip {
                    continue;
                }
                let value_expr = match &attr.with {
                    Some(module) => format!(
                        "match {module}::serialize(&self.{field}, serde::__private::ValueSerializer) \
                         {{ ::core::result::Result::Ok(v) => v, ::core::result::Result::Err(e) => match e {{}} }}"
                    ),
                    None => format!("serde::__private::to_value(&self.{field})"),
                };
                pushes.push_str(&format!(
                    "__entries.push((\"{field}\".to_string(), {value_expr}));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         let mut __entries: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         serde::Serializer::serialize_value(__s, serde::Value::Object(__entries))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity } if *arity == 1 => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                     -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     serde::Serializer::serialize_value(__s, serde::__private::to_value(&self.0))\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::__private::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         serde::Serializer::serialize_value(__s, serde::Value::Array(vec![{}]))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::Unit { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                     -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     serde::Serializer::serialize_value(__s, serde::Value::Null)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            // Externally tagged, as upstream: unit variants serialise to the
            // variant name string, struct variants to `{"Name": {fields…}}`.
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string())",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binders = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::__private::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => serde::Value::Object(vec![\
                                (\"{v}\".to_string(), serde::Value::Object(vec![{}]))]) ",
                            pushes.join(", "),
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         let __value = match self {{ {} }};\n\
                         serde::Serializer::serialize_value(__s, __value)\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for (field, attr) in fields {
                let init = if attr.skip {
                    format!("{field}: ::core::default::Default::default(),\n")
                } else if let Some(module) = &attr.with {
                    format!(
                        "{field}: {{\n\
                             let __fv = serde::__private::take_field::<__D::Error>(&mut __entries, \"{field}\")?;\n\
                             {module}::deserialize(serde::__private::ValueDeserializer::new(__fv))\n\
                                 .map_err(|e| <__D::Error as serde::de::Error>::custom(\
                                     format!(\"field `{field}`: {{e}}\")))?\n\
                         }},\n"
                    )
                } else {
                    format!(
                        "{field}: serde::__private::from_field(&mut __entries, \"{field}\")?,\n"
                    )
                };
                inits.push_str(&init);
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                         -> ::core::result::Result<Self, __D::Error> {{\n\
                         let __v = serde::Deserializer::take_value(__d)?;\n\
                         let mut __entries = serde::__private::into_object::<__D::Error>(__v, \"{name}\")?;\n\
                         let _ = &mut __entries;\n\
                         ::core::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity } if *arity == 1 => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                     -> ::core::result::Result<Self, __D::Error> {{\n\
                     let __v = serde::Deserializer::take_value(__d)?;\n\
                     ::core::result::Result::Ok({name}(serde::__private::from_value(__v)\
                         .map_err(|e| <__D::Error as serde::de::Error>::custom(e))?))\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|_| {
                    "serde::__private::from_value(__items.next().ok_or_else(|| \
                         <__D::Error as serde::de::Error>::custom(\"tuple too short\"))?)\
                         .map_err(|e| <__D::Error as serde::de::Error>::custom(e))?"
                        .to_string()
                })
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                         -> ::core::result::Result<Self, __D::Error> {{\n\
                         let __v = serde::Deserializer::take_value(__d)?;\n\
                         let __items = serde::__private::into_array::<__D::Error>(__v, \"{name}\")?;\n\
                         let mut __items = __items.into_iter();\n\
                         ::core::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Unit { name } => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                     -> ::core::result::Result<Self, __D::Error> {{\n\
                     let _ = serde::Deserializer::take_value(__d)?;\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v})",
                        v = v.name
                    )
                })
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let fields = v.fields.as_ref()?;
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: serde::__private::from_field(&mut __fields, \"{f}\")?")
                        })
                        .collect();
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let mut __fields = serde::__private::into_object::<__D::Error>(\
                                 __body, \"{name}::{v}\")?;\n\
                             let _ = &mut __fields;\n\
                             ::core::result::Result::Ok({name}::{v} {{ {} }})\n\
                         }}",
                        inits.join(", "),
                        v = v.name
                    ))
                })
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
                         -> ::core::result::Result<Self, __D::Error> {{\n\
                         match serde::Deserializer::take_value(__d)? {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::core::result::Result::Err(\
                                     <__D::Error as serde::de::Error>::custom(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __body) = __entries.into_iter().next()\
                                     .expect(\"len checked\");\n\
                                 #[allow(unused_variables)]\n\
                                 let __body = __body;\n\
                                 match __tag.as_str() {{\n\
                                     {struct_arms}\n\
                                     other => ::core::result::Result::Err(\
                                         <__D::Error as serde::de::Error>::custom(format!(\
                                             \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::core::result::Result::Err(\
                                 <__D::Error as serde::de::Error>::custom(format!(\
                                     \"expected variant for {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                struct_arms = if struct_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", struct_arms.join(",\n"))
                },
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-tree parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes (doc comments, remaining derives, etc.) and
    // visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde derive (vendored): generic type `{name}` is not supported; \
                 extend crates/vendor/serde_derive if needed"
            );
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Unit { name },
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name: name.clone(),
                variants: parse_variants(&name, g.stream()),
            },
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Parses `#[serde(...)]` attribute contents into a [`FieldAttr`].
fn apply_serde_attr(attr: &mut FieldAttr, group: TokenStream) {
    let inner: Vec<TokenTree> = group.into_iter().collect();
    // Contents of `serde(...)`: we only enter here for the serde ident, the
    // group that follows holds `skip` or `with = "path"`.
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                attr.skip = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "module::path"
                let lit = match inner.get(j + 2) {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => panic!("serde derive: malformed `with` attribute: {other:?}"),
                };
                attr.with = Some(lit.trim_matches('"').to_string());
                j += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            other => panic!("serde derive (vendored): unsupported serde attribute {other:?}"),
        }
    }
}

/// Extracts `(name, attrs)` for each named field, skipping types.
fn parse_named_fields(stream: TokenStream) -> Vec<(String, FieldAttr)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut attr = FieldAttr::default();
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            apply_serde_attr(&mut attr, args.stream());
                        }
                    }
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        // Field name.
        let Some(TokenTree::Ident(field_name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let field_name = field_name.to_string();
        i += 1;
        // `:` then the type — skip to the next top-level comma, tracking
        // angle-bracket depth (groups are atomic token trees already).
        debug_assert!(matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'));
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push((field_name, attr));
    }
    fields
}

/// Counts the fields of a tuple struct by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Extracts variants: unit or struct-like (named fields). Tuple variants
/// are rejected — none exist in this workspace.
fn parse_variants(enum_name: &str, stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Attributes (doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            break;
        };
        let variant = variant.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            None => None,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
                None
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip `= expr` to the comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                None
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|(name, _attr)| name)
                    .collect();
                i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                Some(names)
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde derive (vendored): enum `{enum_name}` variant `{variant}` is tuple-like; \
                 only unit and struct variants are supported — extend crates/vendor/serde_derive \
                 if needed"
            ),
            other => panic!("serde derive: unexpected token after variant `{variant}`: {other:?}"),
        };
        variants.push(Variant {
            name: variant,
            fields,
        });
    }
    variants
}
