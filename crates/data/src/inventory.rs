//! Machine inventory: how many concrete machines of each machine type make
//! up the suite. Data sets 2 and 3 use the Table III break-up (30 machines
//! over 13 machine types, four of them special-purpose).

use crate::ids::{MachineId, MachineTypeId};
use crate::system::Machine;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Counts of machines per machine type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInventory {
    /// `counts[i]` = number of machines whose type is `MachineTypeId(i)`.
    counts: Vec<u32>,
}

impl MachineInventory {
    /// Inventory with exactly one machine per machine type (data set 1).
    pub fn one_of_each(machine_types: usize) -> Self {
        MachineInventory {
            counts: vec![1; machine_types],
        }
    }

    /// Inventory from explicit per-type counts.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidInventory`] when empty or all-zero.
    pub fn from_counts(counts: Vec<u32>) -> Result<Self> {
        if counts.is_empty() {
            return Err(DataError::InvalidInventory("no machine types"));
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(DataError::InvalidInventory("no machines"));
        }
        Ok(MachineInventory { counts })
    }

    /// Number of machine types covered (including zero-count types).
    #[inline]
    pub fn machine_types(&self) -> usize {
        self.counts.len()
    }

    /// Number of machines of type `m`.
    #[inline]
    pub fn count(&self, m: MachineTypeId) -> u32 {
        self.counts[m.index()]
    }

    /// Total machine count.
    pub fn total_machines(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Materialises the suite: machines are numbered consecutively grouped
    /// by machine type, matching the paper's "suite of M machines".
    pub fn machines(&self) -> Vec<Machine> {
        let mut out = Vec::with_capacity(self.total_machines());
        let mut next = 0u32;
        for (ty, &count) in self.counts.iter().enumerate() {
            for _ in 0..count {
                out.push(Machine {
                    id: MachineId(next),
                    machine_type: MachineTypeId(ty as u16),
                });
                next += 1;
            }
        }
        out
    }
}

/// The Table III break-up for data sets 2 and 3: four special-purpose
/// machine types (one machine each) followed by the nine real machine types.
///
/// Column order matches [`dataset2_machine_type_names`]: machine types 0–3
/// are Special-purpose A–D and types 4–12 are the nine Table I machines, so
/// this inventory is intended for ETC/EPC matrices whose first four columns
/// are the special-purpose types.
pub fn dataset2_inventory() -> MachineInventory {
    MachineInventory::from_counts(vec![
        1, // Special-purpose machine A
        1, // Special-purpose machine B
        1, // Special-purpose machine C
        1, // Special-purpose machine D
        2, // AMD A8-3870K
        3, // AMD FX-8159
        3, // Intel Core i3 2120
        3, // Intel Core i5 2400S
        2, // Intel Core i5 2500K
        4, // Intel Core i7 3960X
        2, // Intel Core i7 3960X @ 4.2 GHz
        5, // Intel Core i7 3770K
        2, // Intel Core i7 3770K @ 4.3 GHz
    ])
    .expect("static inventory is valid")
}

/// Machine-type names matching [`dataset2_inventory`] column order.
pub fn dataset2_machine_type_names() -> Vec<String> {
    let mut names: Vec<String> = (b'A'..=b'D')
        .map(|c| format!("Special-purpose machine {}", c as char))
        .collect();
    names.extend(
        crate::real::REAL_MACHINE_NAMES
            .iter()
            .map(|s| s.to_string()),
    );
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_totals_thirty_machines_over_thirteen_types() {
        let inv = dataset2_inventory();
        assert_eq!(inv.machine_types(), 13);
        assert_eq!(inv.total_machines(), 30);
        assert_eq!(dataset2_machine_type_names().len(), 13);
    }

    #[test]
    fn machines_are_grouped_and_consecutive() {
        let inv = MachineInventory::from_counts(vec![2, 0, 3]).unwrap();
        let ms = inv.machines();
        assert_eq!(ms.len(), 5);
        assert_eq!(ms[0].machine_type, MachineTypeId(0));
        assert_eq!(ms[1].machine_type, MachineTypeId(0));
        assert_eq!(ms[2].machine_type, MachineTypeId(2));
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.id, MachineId(i as u32));
        }
    }

    #[test]
    fn one_of_each() {
        let inv = MachineInventory::one_of_each(4);
        assert_eq!(inv.total_machines(), 4);
        assert_eq!(inv.count(MachineTypeId(3)), 1);
    }

    #[test]
    fn rejects_degenerate_inventories() {
        assert!(MachineInventory::from_counts(vec![]).is_err());
        assert!(MachineInventory::from_counts(vec![0, 0]).is_err());
    }

    #[test]
    fn table3_specials_have_one_machine_each() {
        let inv = dataset2_inventory();
        for ty in 0..4u16 {
            assert_eq!(inv.count(MachineTypeId(ty)), 1);
        }
        // Most machines are general-purpose, per §III-B.
        let specials: u32 = (0..4u16).map(|t| inv.count(MachineTypeId(t))).sum();
        assert!(inv.total_machines() as u32 - specials > specials);
    }
}
