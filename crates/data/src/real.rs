//! The paper's "real historical data" set: nine machines (Table I) × five
//! benchmark programs (Table II), sourced from openbenchmarking.org in 2012.
//!
//! **Substitution note (see DESIGN.md §2):** the paper cites the benchmark
//! result page but does not print the measured numbers, and the page is not
//! available offline. The values below are hand-curated to be *realistic for
//! the named CPUs* and to reproduce the heterogeneity structure the analysis
//! depends on: the Sandy Bridge-E i7-3960X parts are the fastest and most
//! power-hungry, the A8-3870K APU is the slowest, the overclocked parts are
//! ~10 % faster at disproportionately higher power, GPU-bound workloads
//! (Warsow, Unigine Heaven) show a compressed execution-time spread but a
//! large power spread (all machines share one discrete GPU per the paper),
//! and CPU-bound workloads (C-Ray, kernel compilation) show a ~3× time
//! spread. Every downstream computation consumes only these ETC/EPC values,
//! so matching the structure (not the exact 2012 samples) preserves the
//! experiments' behaviour.

#[cfg(test)]
use crate::ids::{MachineTypeId, TaskTypeId};
use crate::inventory::MachineInventory;
use crate::matrix::{Epc, Etc, TypeMatrix};
use crate::system::HcSystem;

/// Table I — the nine benchmark machines, designated by CPU.
pub const REAL_MACHINE_NAMES: [&str; 9] = [
    "AMD A8-3870K",
    "AMD FX-8159",
    "Intel Core i3 2120",
    "Intel Core i5 2400S",
    "Intel Core i5 2500K",
    "Intel Core i7 3960X",
    "Intel Core i7 3960X @ 4.2 GHz",
    "Intel Core i7 3770K",
    "Intel Core i7 3770K @ 4.3 GHz",
];

/// Table II — the five benchmark programs.
pub const REAL_TASK_NAMES: [&str; 5] = [
    "C-Ray",
    "7-Zip Compression",
    "Warsow",
    "Unigine Heaven",
    "Timed Linux Kernel Compilation",
];

/// Number of machine types in the real data set.
pub const REAL_MACHINE_TYPES: usize = 9;

/// Number of task types in the real data set.
pub const REAL_TASK_TYPES: usize = 5;

// Row-major 5×9 execution times in seconds (task row × machine column,
// orders matching REAL_TASK_NAMES / REAL_MACHINE_NAMES).
const ETC_DATA: [f64; 45] = [
    // C-Ray: CPU/thread-count bound, ~3.8x spread.
    95.0, 45.0, 88.0, 62.0, 55.0, 28.0, 25.0, 40.0, 36.0, // 7-Zip Compression.
    150.0, 85.0, 140.0, 105.0, 95.0, 60.0, 55.0, 78.0, 71.0,
    // Warsow: GPU-assisted, spread compressed.
    210.0, 160.0, 150.0, 130.0, 115.0, 100.0, 92.0, 105.0, 96.0,
    // Unigine Heaven: GPU-bound, small CPU sensitivity.
    290.0, 275.0, 272.0, 265.0, 258.0, 250.0, 248.0, 252.0, 249.0,
    // Timed Linux Kernel Compilation: strongly core-count bound.
    230.0, 110.0, 190.0, 135.0, 120.0, 75.0, 68.0, 95.0, 86.0,
];

// Row-major 5×9 average system power draws in watts.
const EPC_DATA: [f64; 45] = [
    // C-Ray.
    128.0, 182.0, 96.0, 92.0, 124.0, 196.0, 228.0, 131.0, 157.0, // 7-Zip Compression.
    122.0, 175.0, 93.0, 88.0, 118.0, 188.0, 219.0, 126.0, 149.0,
    // Warsow (discrete GPU active).
    221.0, 262.0, 178.0, 173.0, 206.0, 272.0, 301.0, 212.0, 233.0,
    // Unigine Heaven (discrete GPU saturated).
    232.0, 271.0, 185.0, 181.0, 214.0, 281.0, 309.0, 220.0, 241.0,
    // Timed Linux Kernel Compilation.
    131.0, 187.0, 98.0, 94.0, 127.0, 201.0, 233.0, 135.0, 160.0,
];

/// The 5×9 real ETC matrix (seconds).
pub fn real_etc() -> Etc {
    Etc(
        TypeMatrix::from_rows(REAL_TASK_TYPES, REAL_MACHINE_TYPES, ETC_DATA.to_vec())
            .expect("static data has correct shape"),
    )
}

/// The 5×9 real EPC matrix (watts).
pub fn real_epc() -> Epc {
    Epc(
        TypeMatrix::from_rows(REAL_TASK_TYPES, REAL_MACHINE_TYPES, EPC_DATA.to_vec())
            .expect("static data has correct shape"),
    )
}

/// Data set 1: the real 5×9 matrices with exactly one machine per machine
/// type (as in §V-A, "this set only allotted one machine to each machine
/// type").
pub fn real_system() -> HcSystem {
    let inventory = MachineInventory::one_of_each(REAL_MACHINE_TYPES);
    HcSystem::new(
        real_etc(),
        real_epc(),
        inventory,
        REAL_TASK_NAMES.iter().map(|s| s.to_string()).collect(),
        REAL_MACHINE_NAMES.iter().map(|s| s.to_string()).collect(),
    )
    .expect("real data set is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_tables() {
        let etc = real_etc();
        let epc = real_epc();
        assert_eq!(etc.0.task_types(), 5);
        assert_eq!(etc.0.machine_types(), 9);
        assert_eq!(epc.0.task_types(), 5);
        assert_eq!(epc.0.machine_types(), 9);
        assert_eq!(REAL_MACHINE_NAMES.len(), 9);
        assert_eq!(REAL_TASK_NAMES.len(), 5);
    }

    #[test]
    fn all_values_positive_and_finite() {
        assert!(real_etc().0.validate_positive().is_ok());
        assert!(real_epc().0.validate_positive().is_ok());
        for t in 0..5 {
            for m in 0..9 {
                assert!(real_etc().time(TaskTypeId(t), MachineTypeId(m)).is_finite());
            }
        }
    }

    #[test]
    fn machine_performance_ranking_is_plausible() {
        let etc = real_etc();
        // The overclocked 3960X is the fastest machine for every task; the
        // A8-3870K is the slowest.
        for t in 0..5u16 {
            let row = etc.0.row(TaskTypeId(t));
            let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(row[6], min, "3960X@4.2 fastest for task {t}");
            assert_eq!(row[0], max, "A8-3870K slowest for task {t}");
        }
    }

    #[test]
    fn overclocking_costs_power() {
        let epc = real_epc();
        for t in 0..5u16 {
            let t = TaskTypeId(t);
            assert!(epc.power(t, MachineTypeId(6)) > epc.power(t, MachineTypeId(5)));
            assert!(epc.power(t, MachineTypeId(8)) > epc.power(t, MachineTypeId(7)));
        }
    }

    #[test]
    fn gpu_tasks_have_compressed_time_spread() {
        let etc = real_etc();
        let spread = |t: u16| {
            let row = etc.0.row(TaskTypeId(t));
            let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            max / min
        };
        // Heaven (GPU-bound) spread is far below C-Ray (CPU-bound) spread.
        assert!(spread(3) < 1.25);
        assert!(spread(0) > 3.0);
    }

    #[test]
    fn real_system_has_nine_machines() {
        let sys = real_system();
        assert_eq!(sys.machines().len(), 9);
        assert_eq!(sys.task_type_count(), 5);
        assert_eq!(sys.machine_type_count(), 9);
    }

    #[test]
    fn energy_tradeoff_exists() {
        // The machine with minimal EEC is not the machine with minimal ETC
        // for at least one task type — otherwise there is no trade-off to
        // analyse.
        let sys = real_system();
        let mut differs = false;
        for t in 0..5u16 {
            let t = TaskTypeId(t);
            let best_time = (0..9u16)
                .min_by(|&a, &b| {
                    sys.etc()
                        .time(t, MachineTypeId(a))
                        .total_cmp(&sys.etc().time(t, MachineTypeId(b)))
                })
                .unwrap();
            let best_energy = (0..9u16)
                .min_by(|&a, &b| {
                    sys.eec(t, MachineTypeId(a))
                        .total_cmp(&sys.eec(t, MachineTypeId(b)))
                })
                .unwrap();
            if best_time != best_energy {
                differs = true;
            }
        }
        assert!(
            differs,
            "fastest machine always cheapest: no energy/time trade-off"
        );
    }
}
