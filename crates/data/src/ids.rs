//! Strongly-typed identifiers for task types, machine types, and machine
//! instances. Newtypes prevent the classic "task index used as machine
//! index" bug that plagues matrix-indexed scheduling code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a *task type* τ (a row of the ETC/EPC matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskTypeId(pub u16);

/// Identifier of a *machine type* μ (a column of the ETC/EPC matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineTypeId(pub u16);

/// Identifier of a concrete machine instance in the suite. Several machines
/// may share one machine type (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl TaskTypeId {
    /// Zero-based row index into ETC/EPC.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MachineTypeId {
    /// Zero-based column index into ETC/EPC.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MachineId {
    /// Zero-based index into the machine suite.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl fmt::Display for MachineTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "μ{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u16> for TaskTypeId {
    fn from(v: u16) -> Self {
        TaskTypeId(v)
    }
}

impl From<u16> for MachineTypeId {
    fn from(v: u16) -> Self {
        MachineTypeId(v)
    }
}

impl From<u32> for MachineId {
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TaskTypeId(3).to_string(), "τ3");
        assert_eq!(MachineTypeId(7).to_string(), "μ7");
        assert_eq!(MachineId(12).to_string(), "m12");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(TaskTypeId(5).index(), 5);
        assert_eq!(MachineTypeId::from(9).index(), 9);
        assert_eq!(MachineId::from(1000).index(), 1000);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(TaskTypeId(1) < TaskTypeId(2));
        assert!(MachineId(0) < MachineId(10));
    }
}
