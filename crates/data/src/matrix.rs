//! Task-type × machine-type matrices: the generic [`TypeMatrix`] plus the
//! semantic wrappers [`Etc`] (estimated time to compute, seconds) and
//! [`Epc`] (estimated power consumption, watts).
//!
//! Storage is a dense row-major `Vec<f64>` — task types are rows, machine
//! types are columns, matching the paper's `ETC(τ, μ)` notation.
//! Incompatible (task type, machine type) pairs hold `+∞` in the ETC; every
//! accessor that aggregates over machines skips non-finite entries.

use crate::ids::{MachineTypeId, TaskTypeId};
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix indexed by `(TaskTypeId, MachineTypeId)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeMatrix {
    task_types: usize,
    machine_types: usize,
    /// `+∞` (incompatible pair) is serialised as `null` because JSON has no
    /// infinity literal; the deserialiser maps `null` back to `+∞`.
    #[serde(with = "serde_inf")]
    data: Vec<f64>,
}

/// Serde adapter mapping non-finite entries to `null` and back to `+∞`.
mod serde_inf {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(data: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let opt: Vec<Option<f64>> = data
            .iter()
            .map(|&v| if v.is_finite() { Some(v) } else { None })
            .collect();
        opt.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let opt = Vec::<Option<f64>>::deserialize(d)?;
        Ok(opt
            .into_iter()
            .map(|v| v.unwrap_or(f64::INFINITY))
            .collect())
    }
}

impl TypeMatrix {
    /// Creates a matrix filled with `fill`.
    pub fn filled(task_types: usize, machine_types: usize, fill: f64) -> Self {
        TypeMatrix {
            task_types,
            machine_types,
            data: vec![fill; task_types * machine_types],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// [`DataError::DimensionMismatch`] when `data.len()` differs from
    /// `task_types * machine_types`.
    pub fn from_rows(task_types: usize, machine_types: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != task_types * machine_types {
            return Err(DataError::DimensionMismatch {
                what: "row-major data length",
            });
        }
        Ok(TypeMatrix {
            task_types,
            machine_types,
            data,
        })
    }

    /// Number of task types (rows).
    #[inline]
    pub fn task_types(&self) -> usize {
        self.task_types
    }

    /// Number of machine types (columns).
    #[inline]
    pub fn machine_types(&self) -> usize {
        self.machine_types
    }

    #[inline]
    fn offset(&self, t: TaskTypeId, m: MachineTypeId) -> usize {
        debug_assert!(t.index() < self.task_types && m.index() < self.machine_types);
        t.index() * self.machine_types + m.index()
    }

    /// Value at `(t, m)`.
    #[inline]
    pub fn get(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.data[self.offset(t, m)]
    }

    /// Sets the value at `(t, m)`.
    #[inline]
    pub fn set(&mut self, t: TaskTypeId, m: MachineTypeId, v: f64) {
        let off = self.offset(t, m);
        self.data[off] = v;
    }

    /// Row slice for task type `t` (one entry per machine type).
    pub fn row(&self, t: TaskTypeId) -> &[f64] {
        let start = t.index() * self.machine_types;
        &self.data[start..start + self.machine_types]
    }

    /// Iterator over the column for machine type `m`.
    pub fn column(&self, m: MachineTypeId) -> impl Iterator<Item = f64> + '_ {
        self.data[m.index()..]
            .iter()
            .copied()
            .step_by(self.machine_types)
    }

    /// Mean of the *finite* entries of row `t` — the paper's "row average"
    /// (average execution time across all machines that can run the task).
    /// Returns `None` when the row has no finite entry.
    pub fn row_average(&self, t: TaskTypeId) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in self.row(t) {
            if v.is_finite() {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// All row averages, in task-type order (skipping none; rows with no
    /// finite entry yield `None`).
    pub fn row_averages(&self) -> Vec<Option<f64>> {
        (0..self.task_types)
            .map(|t| self.row_average(TaskTypeId(t as u16)))
            .collect()
    }

    /// Appends a new row, returning its [`TaskTypeId`].
    ///
    /// # Errors
    ///
    /// [`DataError::DimensionMismatch`] when the row length differs from
    /// the machine-type count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<TaskTypeId> {
        if row.len() != self.machine_types {
            return Err(DataError::DimensionMismatch {
                what: "pushed row length",
            });
        }
        let id = TaskTypeId(self.task_types as u16);
        self.data.extend_from_slice(row);
        self.task_types += 1;
        Ok(id)
    }

    /// Appends a new column, returning its [`MachineTypeId`].
    ///
    /// # Errors
    ///
    /// [`DataError::DimensionMismatch`] when the column length differs from
    /// the task-type count.
    pub fn push_column(&mut self, col: &[f64]) -> Result<MachineTypeId> {
        if col.len() != self.task_types {
            return Err(DataError::DimensionMismatch {
                what: "pushed column length",
            });
        }
        let id = MachineTypeId(self.machine_types as u16);
        let old_cols = self.machine_types;
        let mut data = Vec::with_capacity(self.task_types * (old_cols + 1));
        for (t, &extra) in col.iter().enumerate() {
            data.extend_from_slice(&self.data[t * old_cols..(t + 1) * old_cols]);
            data.push(extra);
        }
        self.data = data;
        self.machine_types += 1;
        Ok(id)
    }

    /// Validates that every entry is either finite-positive or `+∞`.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidValue`] on NaN, negative, zero, or `-∞` entries.
    pub fn validate_positive(&self) -> Result<()> {
        for &v in &self.data {
            if v.is_nan() || v <= 0.0 {
                return Err(DataError::InvalidValue {
                    what: "entries must be > 0 or +inf",
                });
            }
        }
        Ok(())
    }
}

/// Estimated Time to Compute matrix (seconds). `+∞` marks an incompatible
/// (task type, machine type) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Etc(pub TypeMatrix);

/// Estimated Power Consumption matrix (watts, average while executing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epc(pub TypeMatrix);

impl Etc {
    /// Execution time of task type `t` on machine type `m` (seconds).
    #[inline]
    pub fn time(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.0.get(t, m)
    }

    /// Whether machine type `m` can execute task type `t`.
    #[inline]
    pub fn compatible(&self, t: TaskTypeId, m: MachineTypeId) -> bool {
        self.0.get(t, m).is_finite()
    }

    /// Machine types able to execute `t`.
    pub fn compatible_machine_types(&self, t: TaskTypeId) -> Vec<MachineTypeId> {
        (0..self.0.machine_types())
            .map(|m| MachineTypeId(m as u16))
            .filter(|&m| self.compatible(t, m))
            .collect()
    }
}

impl Epc {
    /// Average power draw of task type `t` on machine type `m` (watts).
    #[inline]
    pub fn power(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.0.get(t, m)
    }
}

/// Computes the Expected Energy Consumption matrix `EEC = ETC ⊙ EPC`
/// (element-wise product, joules). Incompatible pairs stay `+∞`.
///
/// # Errors
///
/// [`DataError::DimensionMismatch`] when the two matrices disagree in shape.
pub fn eec(etc: &Etc, epc: &Epc) -> Result<TypeMatrix> {
    if etc.0.task_types() != epc.0.task_types() || etc.0.machine_types() != epc.0.machine_types() {
        return Err(DataError::DimensionMismatch {
            what: "ETC vs EPC shape",
        });
    }
    let mut out = TypeMatrix::filled(etc.0.task_types(), etc.0.machine_types(), 0.0);
    for t in 0..etc.0.task_types() {
        let t = TaskTypeId(t as u16);
        for m in 0..etc.0.machine_types() {
            let m = MachineTypeId(m as u16);
            out.set(t, m, etc.time(t, m) * epc.power(t, m));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TypeMatrix {
        TypeMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = sample();
        assert_eq!(m.get(TaskTypeId(1), MachineTypeId(2)), 6.0);
        m.set(TaskTypeId(0), MachineTypeId(1), 9.5);
        assert_eq!(m.get(TaskTypeId(0), MachineTypeId(1)), 9.5);
    }

    #[test]
    fn row_and_column_views() {
        let m = sample();
        assert_eq!(m.row(TaskTypeId(1)), &[4.0, 5.0, 6.0]);
        let col: Vec<f64> = m.column(MachineTypeId(1)).collect();
        assert_eq!(col, vec![2.0, 5.0]);
    }

    #[test]
    fn row_average_skips_infinite() {
        let m = TypeMatrix::from_rows(1, 3, vec![2.0, f64::INFINITY, 4.0]).unwrap();
        assert_eq!(m.row_average(TaskTypeId(0)), Some(3.0));
    }

    #[test]
    fn row_average_none_for_all_infinite() {
        let m = TypeMatrix::from_rows(1, 2, vec![f64::INFINITY, f64::INFINITY]).unwrap();
        assert_eq!(m.row_average(TaskTypeId(0)), None);
    }

    #[test]
    fn push_row_and_column() {
        let mut m = sample();
        let t = m.push_row(&[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(t, TaskTypeId(2));
        assert_eq!(m.task_types(), 3);
        let c = m.push_column(&[10.0, 11.0, 12.0]).unwrap();
        assert_eq!(c, MachineTypeId(3));
        assert_eq!(m.get(TaskTypeId(0), MachineTypeId(3)), 10.0);
        assert_eq!(m.get(TaskTypeId(2), MachineTypeId(3)), 12.0);
        assert_eq!(m.get(TaskTypeId(2), MachineTypeId(0)), 7.0);
        assert!(m.push_row(&[1.0]).is_err());
        assert!(m.push_column(&[1.0]).is_err());
    }

    #[test]
    fn from_rows_checks_length() {
        assert!(TypeMatrix::from_rows(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn validate_positive_rejects_bad_values() {
        let ok = TypeMatrix::from_rows(1, 2, vec![1.0, f64::INFINITY]).unwrap();
        assert!(ok.validate_positive().is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            let m = TypeMatrix::from_rows(1, 1, vec![bad]).unwrap();
            assert!(m.validate_positive().is_err(), "value {bad} accepted");
        }
    }

    #[test]
    fn eec_is_elementwise_product() {
        let etc = Etc(TypeMatrix::from_rows(1, 2, vec![2.0, f64::INFINITY]).unwrap());
        let epc = Epc(TypeMatrix::from_rows(1, 2, vec![100.0, 50.0]).unwrap());
        let e = eec(&etc, &epc).unwrap();
        assert_eq!(e.get(TaskTypeId(0), MachineTypeId(0)), 200.0);
        assert!(e.get(TaskTypeId(0), MachineTypeId(1)).is_infinite());
    }

    #[test]
    fn eec_rejects_shape_mismatch() {
        let etc = Etc(TypeMatrix::filled(1, 2, 1.0));
        let epc = Epc(TypeMatrix::filled(2, 2, 1.0));
        assert!(eec(&etc, &epc).is_err());
    }

    #[test]
    fn compatible_machine_types_filters_infinity() {
        let etc = Etc(TypeMatrix::from_rows(1, 3, vec![1.0, f64::INFINITY, 2.0]).unwrap());
        assert!(etc.compatible(TaskTypeId(0), MachineTypeId(0)));
        assert!(!etc.compatible(TaskTypeId(0), MachineTypeId(1)));
        assert_eq!(
            etc.compatible_machine_types(TaskTypeId(0)),
            vec![MachineTypeId(0), MachineTypeId(2)]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: TypeMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
