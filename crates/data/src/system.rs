//! The heterogeneous computing system: a machine suite plus its ETC/EPC/EEC
//! characteristics. This is the immutable "hardware" object every other
//! crate (workload, simulator, heuristics, NSGA-II) operates against.

use crate::ids::{MachineId, MachineTypeId, TaskTypeId};
use crate::inventory::MachineInventory;
use crate::matrix::{eec, Epc, Etc, TypeMatrix};
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// A concrete machine instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    /// Suite-wide machine identifier.
    pub id: MachineId,
    /// The machine's type (ETC/EPC column).
    pub machine_type: MachineTypeId,
}

/// A heterogeneous suite of machines with per-type execution-time and power
/// characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HcSystem {
    etc: Etc,
    epc: Epc,
    eec: TypeMatrix,
    inventory: MachineInventory,
    machines: Vec<Machine>,
    task_type_names: Vec<String>,
    machine_type_names: Vec<String>,
    /// `feasible[t]` = machine ids able to execute task type `t`.
    feasible: Vec<Vec<MachineId>>,
}

impl HcSystem {
    /// Builds and validates a system.
    ///
    /// # Errors
    ///
    /// * [`DataError::DimensionMismatch`] — ETC/EPC/inventory/name shapes
    ///   disagree.
    /// * [`DataError::InvalidValue`] — non-positive or NaN matrix entries.
    /// * [`DataError::UnexecutableTaskType`] — a task type has no feasible
    ///   machine in the inventory.
    pub fn new(
        etc: Etc,
        epc: Epc,
        inventory: MachineInventory,
        task_type_names: Vec<String>,
        machine_type_names: Vec<String>,
    ) -> Result<Self> {
        let eec = eec(&etc, &epc)?;
        etc.0.validate_positive()?;
        epc.0.validate_positive()?;
        if inventory.machine_types() != etc.0.machine_types() {
            return Err(DataError::DimensionMismatch {
                what: "inventory vs ETC machine types",
            });
        }
        if task_type_names.len() != etc.0.task_types() {
            return Err(DataError::DimensionMismatch {
                what: "task names vs ETC rows",
            });
        }
        if machine_type_names.len() != etc.0.machine_types() {
            return Err(DataError::DimensionMismatch {
                what: "machine names vs ETC columns",
            });
        }
        let machines = inventory.machines();
        let mut feasible = Vec::with_capacity(etc.0.task_types());
        for t in 0..etc.0.task_types() {
            let t = TaskTypeId(t as u16);
            let ms: Vec<MachineId> = machines
                .iter()
                .filter(|m| etc.compatible(t, m.machine_type))
                .map(|m| m.id)
                .collect();
            if ms.is_empty() {
                return Err(DataError::UnexecutableTaskType(t));
            }
            feasible.push(ms);
        }
        Ok(HcSystem {
            etc,
            epc,
            eec,
            inventory,
            machines,
            task_type_names,
            machine_type_names,
            feasible,
        })
    }

    /// The ETC matrix.
    #[inline]
    pub fn etc(&self) -> &Etc {
        &self.etc
    }

    /// The EPC matrix.
    #[inline]
    pub fn epc(&self) -> &Epc {
        &self.epc
    }

    /// Expected energy consumption `EEC(τ, μ) = ETC · EPC` in joules (Eq. 2).
    #[inline]
    pub fn eec(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.eec.get(t, m)
    }

    /// The machine suite, ordered by [`MachineId`].
    #[inline]
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The inventory the suite was materialised from.
    #[inline]
    pub fn inventory(&self) -> &MachineInventory {
        &self.inventory
    }

    /// Machine type of machine `m`.
    #[inline]
    pub fn machine_type(&self, m: MachineId) -> MachineTypeId {
        self.machines[m.index()].machine_type
    }

    /// Number of task types.
    #[inline]
    pub fn task_type_count(&self) -> usize {
        self.etc.0.task_types()
    }

    /// Number of machine types.
    #[inline]
    pub fn machine_type_count(&self) -> usize {
        self.etc.0.machine_types()
    }

    /// Number of machines.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Execution time of task type `t` on machine `m` (seconds).
    #[inline]
    pub fn exec_time(&self, t: TaskTypeId, m: MachineId) -> f64 {
        self.etc.time(t, self.machine_type(m))
    }

    /// Energy consumed by task type `t` on machine `m` (joules).
    #[inline]
    pub fn energy(&self, t: TaskTypeId, m: MachineId) -> f64 {
        self.eec(t, self.machine_type(m))
    }

    /// Machines able to execute task type `t` (never empty).
    #[inline]
    pub fn feasible_machines(&self, t: TaskTypeId) -> &[MachineId] {
        &self.feasible[t.index()]
    }

    /// Whether machine `m` can execute task type `t`.
    #[inline]
    pub fn is_feasible(&self, t: TaskTypeId, m: MachineId) -> bool {
        self.exec_time(t, m).is_finite()
    }

    /// Display name of task type `t`.
    pub fn task_type_name(&self, t: TaskTypeId) -> &str {
        &self.task_type_names[t.index()]
    }

    /// Display name of machine type `m`.
    pub fn machine_type_name(&self, m: MachineTypeId) -> &str {
        &self.machine_type_names[m.index()]
    }

    /// Sum over task types of the minimum possible energy — a lower bound on
    /// the energy objective of any allocation of one task per task type.
    /// Multiplying by per-type task counts bounds a whole trace.
    pub fn min_energy_per_type(&self, t: TaskTypeId) -> f64 {
        self.feasible_machines(t)
            .iter()
            .map(|&m| self.energy(t, m))
            .fold(f64::INFINITY, f64::min)
    }

    /// Rebuilds the system with a different machine inventory over the same
    /// machine types — the what-if entry point for capacity planning
    /// ("what happens to the trade-off curve if we decommission the
    /// special-purpose machines / add two more i7s?").
    ///
    /// # Errors
    ///
    /// Same validation as [`HcSystem::new`]; in particular a task type that
    /// only the removed machines could execute is rejected.
    pub fn with_inventory(&self, inventory: MachineInventory) -> Result<HcSystem> {
        HcSystem::new(
            self.etc.clone(),
            self.epc.clone(),
            inventory,
            self.task_type_names.clone(),
            self.machine_type_names.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::TypeMatrix;

    fn tiny_system() -> HcSystem {
        // 2 task types × 2 machine types; type 1 is "special": task 0 cannot
        // run there.
        let etc = Etc(TypeMatrix::from_rows(2, 2, vec![10.0, f64::INFINITY, 20.0, 2.0]).unwrap());
        let epc = Epc(TypeMatrix::from_rows(2, 2, vec![100.0, 50.0, 100.0, 50.0]).unwrap());
        let inv = MachineInventory::from_counts(vec![2, 1]).unwrap();
        HcSystem::new(
            etc,
            epc,
            inv,
            vec!["t0".into(), "t1".into()],
            vec!["general".into(), "special".into()],
        )
        .unwrap()
    }

    #[test]
    fn feasibility_respects_infinity() {
        let sys = tiny_system();
        assert_eq!(
            sys.feasible_machines(TaskTypeId(0)),
            &[MachineId(0), MachineId(1)]
        );
        assert_eq!(
            sys.feasible_machines(TaskTypeId(1)),
            &[MachineId(0), MachineId(1), MachineId(2)]
        );
        assert!(!sys.is_feasible(TaskTypeId(0), MachineId(2)));
        assert!(sys.is_feasible(TaskTypeId(1), MachineId(2)));
    }

    #[test]
    fn exec_time_and_energy_dispatch_through_machine_type() {
        let sys = tiny_system();
        assert_eq!(sys.exec_time(TaskTypeId(1), MachineId(2)), 2.0);
        assert_eq!(sys.energy(TaskTypeId(1), MachineId(2)), 100.0);
        assert_eq!(sys.energy(TaskTypeId(0), MachineId(0)), 1000.0);
    }

    #[test]
    fn unexecutable_task_type_is_rejected() {
        let etc = Etc(TypeMatrix::from_rows(1, 1, vec![f64::INFINITY]).unwrap());
        let epc = Epc(TypeMatrix::from_rows(1, 1, vec![100.0]).unwrap());
        let inv = MachineInventory::from_counts(vec![1]).unwrap();
        let err = HcSystem::new(etc, epc, inv, vec!["t".into()], vec!["m".into()]).unwrap_err();
        assert_eq!(err, DataError::UnexecutableTaskType(TaskTypeId(0)));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let etc = Etc(TypeMatrix::filled(1, 2, 1.0));
        let epc = Epc(TypeMatrix::filled(1, 2, 1.0));
        let bad_inv = MachineInventory::from_counts(vec![1]).unwrap();
        assert!(HcSystem::new(
            etc.clone(),
            epc.clone(),
            bad_inv,
            vec!["t".into()],
            vec!["a".into(), "b".into()]
        )
        .is_err());

        let inv = MachineInventory::from_counts(vec![1, 1]).unwrap();
        assert!(HcSystem::new(
            etc.clone(),
            epc.clone(),
            inv.clone(),
            vec![],
            vec!["a".into(), "b".into()]
        )
        .is_err());
        assert!(HcSystem::new(etc, epc, inv, vec!["t".into()], vec!["a".into()]).is_err());
    }

    #[test]
    fn min_energy_per_type() {
        let sys = tiny_system();
        assert_eq!(sys.min_energy_per_type(TaskTypeId(0)), 1000.0);
        assert_eq!(sys.min_energy_per_type(TaskTypeId(1)), 100.0);
    }

    #[test]
    fn with_inventory_rebuilds_feasibility() {
        let sys = tiny_system();
        // Drop the special machine (type 1): task 1 loses an option but
        // remains executable on the generals.
        let reduced = sys
            .with_inventory(MachineInventory::from_counts(vec![2, 0]).unwrap())
            .unwrap();
        assert_eq!(reduced.machine_count(), 2);
        assert_eq!(reduced.feasible_machines(TaskTypeId(1)).len(), 2);
        // Growing the suite adds options.
        let grown = sys
            .with_inventory(MachineInventory::from_counts(vec![3, 2]).unwrap())
            .unwrap();
        assert_eq!(grown.machine_count(), 5);
        assert_eq!(grown.feasible_machines(TaskTypeId(0)).len(), 3);
    }

    #[test]
    fn with_inventory_rejects_stranded_task_types() {
        // A system where task 1 runs ONLY on machine type 1; removing that
        // type must fail validation.
        let etc = Etc(TypeMatrix::from_rows(2, 2, vec![10.0, 20.0, f64::INFINITY, 2.0]).unwrap());
        let epc = Epc(TypeMatrix::filled(2, 2, 100.0));
        let inv = MachineInventory::from_counts(vec![1, 1]).unwrap();
        let sys = HcSystem::new(
            etc,
            epc,
            inv,
            vec!["a".into(), "b".into()],
            vec!["g".into(), "s".into()],
        )
        .unwrap();
        let err = sys
            .with_inventory(MachineInventory::from_counts(vec![1, 0]).unwrap())
            .unwrap_err();
        assert_eq!(err, DataError::UnexecutableTaskType(TaskTypeId(1)));
    }

    #[test]
    fn serde_roundtrip() {
        let sys = tiny_system();
        let json = serde_json::to_string(&sys).unwrap();
        let back: HcSystem = serde_json::from_str(&json).unwrap();
        assert_eq!(sys, back);
    }
}
