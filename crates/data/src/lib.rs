#![warn(missing_docs)]

//! System-characteristics substrate: machine/task typing, ETC/EPC/EEC
//! matrices, the paper's real benchmark data set (Tables I & II), and the
//! Table III machine inventory.
//!
//! The paper assumes (§III-D) that per-type performance and power data are
//! available as an **Estimated Time to Compute** matrix `ETC(τ, μ)` and an
//! **Estimated Power Consumption** matrix `EPC(τ, μ)`; the per-task energy
//! is their product, the **Expected Energy Consumption**
//! `EEC(τ, μ) = ETC(τ, μ) · EPC(τ, μ)` (Eq. 2).
//!
//! Special-purpose machine types execute only a small subset of task types;
//! incompatibility is encoded as `ETC = +∞`, which the allocation layer
//! treats as "not a feasible target".

pub mod ids;
pub mod inventory;
pub mod matrix;
pub mod real;
pub mod system;

pub use ids::{MachineId, MachineTypeId, TaskTypeId};
pub use inventory::MachineInventory;
pub use matrix::{Epc, Etc, TypeMatrix};
pub use real::{real_epc, real_etc, real_system, REAL_MACHINE_NAMES, REAL_TASK_NAMES};
pub use system::{HcSystem, Machine};

use std::fmt;

/// Errors produced by the data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Matrix dimensions do not match (ETC vs EPC, or index out of range).
    DimensionMismatch {
        /// Human-readable description of what mismatched.
        what: &'static str,
    },
    /// A matrix value violates its domain (negative time/power, NaN, ...).
    InvalidValue {
        /// Description of the offending value.
        what: &'static str,
    },
    /// A task type has no machine type that can execute it.
    UnexecutableTaskType(TaskTypeId),
    /// The machine inventory is empty or references an unknown type.
    InvalidInventory(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            DataError::InvalidValue { what } => write!(f, "invalid value: {what}"),
            DataError::UnexecutableTaskType(t) => {
                write!(f, "task type {t} cannot execute on any machine type")
            }
            DataError::InvalidInventory(what) => write!(f, "invalid inventory: {what}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
