//! Fixed-width histogram used by tests, benches, and the CLI to inspect
//! sampled distributions (e.g. comparing a Gram-Charlier sample against the
//! real data it was fitted to).

use crate::{Result, StatsError};

/// A histogram over `[lo, hi)` with uniform bin width.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    underflow: u64,
    /// Observations at or above `hi`.
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if the interval is empty/non-finite
    /// or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(StatsError::InvalidParameter(
                "histogram interval must be non-empty",
            ));
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be > 0"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = (((x - self.lo) / (self.hi - self.lo)) * self.counts.len() as f64) as usize;
            // Floating point can land exactly on len() for x just below hi.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records every observation in `sample`.
    pub fn record_all(&mut self, sample: &[f64]) {
        for &x in sample {
            self.record(x);
        }
    }

    /// Count in bin `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations outside the range (under, over).
    #[inline]
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total number of recorded observations, including outliers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Empirical density estimate at bin `i` (count / (total · width)).
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (total as f64 * self.width())
    }

    /// L1 distance between the normalised bin masses of two histograms with
    /// identical binning — a simple distribution-similarity score.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if binning differs.
    pub fn l1_distance(&self, other: &Histogram) -> Result<f64> {
        if self.bins() != other.bins() || self.lo != other.lo || self.hi != other.hi {
            return Err(StatsError::InvalidParameter("histogram binning mismatch"));
        }
        let (ta, tb) = (self.total() as f64, other.total() as f64);
        if ta == 0.0 || tb == 0.0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let mut d = 0.0;
        for i in 0..self.bins() {
            d += (self.counts[i] as f64 / ta - other.counts[i] as f64 / tb).abs();
        }
        d += (self.underflow as f64 / ta - other.underflow as f64 / tb).abs();
        d += (self.overflow as f64 / ta - other.overflow as f64 / tb).abs();
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.0);
        h.record(0.99);
        h.record(5.5);
        h.record(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn outliers_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn density_integrates_to_one_without_outliers() {
        let mut h = Histogram::new(0.0, 2.0, 8).unwrap();
        for i in 0..1000 {
            h.record((i % 200) as f64 / 100.0);
        }
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_distance_zero_for_identical() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 4).unwrap();
        for x in [0.1, 0.3, 0.7] {
            a.record(x);
            b.record(x);
        }
        assert_eq!(a.l1_distance(&b).unwrap(), 0.0);
    }

    #[test]
    fn l1_distance_max_for_disjoint() {
        let mut a = Histogram::new(0.0, 1.0, 2).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 2).unwrap();
        a.record(0.25);
        b.record(0.75);
        assert!((a.l1_distance(&b).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_binning_is_rejected() {
        let a = Histogram::new(0.0, 1.0, 2).unwrap();
        let b = Histogram::new(0.0, 1.0, 3).unwrap();
        assert!(a.l1_distance(&b).is_err());
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::INFINITY, 1.0, 4).is_err());
    }

    #[test]
    fn bin_center() {
        let h = Histogram::new(0.0, 10.0, 10).unwrap();
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }
}
