//! Cornish-Fisher quantile transform — the standard alternative to the
//! Gram-Charlier *density* expansion when sampling from a four-moment
//! specification. Instead of building (and clamping) a density, it warps
//! standard-normal quantiles directly:
//!
//! ```text
//! z' = z + γ₁/6·(z²−1) + γ₂/24·(z³−3z) − γ₁²/36·(2z³−5z)
//! x  = μ + σ·z'
//! ```
//!
//! The warp is monotone only for moderate (γ₁, γ₂); outside that region the
//! implementation falls back to clamping the warp's derivative at zero by
//! sorting the tabulated quantiles, which preserves a valid distribution.
//! The ablation benches compare this sampler against [`crate::GramCharlier`]
//! on heterogeneity-preservation error.

use crate::moments::Moments;
use crate::{Result, StatsError};
use rand::Rng;

/// A Cornish-Fisher sampler for a four-moment target.
#[derive(Debug, Clone)]
pub struct CornishFisher {
    mean: f64,
    std_dev: f64,
    /// Tabulated, monotonised quantiles of the warped standard normal.
    table: Vec<f64>,
}

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.2e-9 on (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

impl CornishFisher {
    /// Builds the sampler for the target moments.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] on non-finite moments or
    /// non-positive variance.
    pub fn new(target: &Moments) -> Result<Self> {
        if !(target.mean.is_finite()
            && target.variance.is_finite()
            && target.skewness.is_finite()
            && target.kurtosis.is_finite())
        {
            return Err(StatsError::InvalidParameter("non-finite moment"));
        }
        if target.variance <= 0.0 {
            return Err(StatsError::InvalidParameter("variance must be > 0"));
        }
        let (g1, g2) = (target.skewness, target.kurtosis);
        let cells = 4096;
        let mut table: Vec<f64> = (0..=cells)
            .map(|i| {
                let p = (i as f64 + 0.5) / (cells as f64 + 1.0);
                let z = normal_quantile(p);
                let z2 = z * z;
                let z3 = z2 * z;
                z + g1 / 6.0 * (z2 - 1.0) + g2 / 24.0 * (z3 - 3.0 * z)
                    - g1 * g1 / 36.0 * (2.0 * z3 - 5.0 * z)
            })
            .collect();
        // Monotonise (the warp can fold back for extreme shape values).
        for i in 1..table.len() {
            if table[i] < table[i - 1] {
                table[i] = table[i - 1];
            }
        }
        Ok(CornishFisher {
            mean: target.mean,
            std_dev: target.variance.sqrt(),
            table,
        })
    }

    /// Quantile at `u ∈ [0, 1]` (linear interpolation on the table).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let pos = u * (self.table.len() - 1) as f64;
        let i = (pos.floor() as usize).min(self.table.len() - 2);
        let frac = pos - i as f64;
        let z = self.table[i] * (1.0 - frac) + self.table[i + 1] * frac;
        self.mean + self.std_dev * z
    }

    /// Draws one value.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Draws one value clamped to be strictly positive (execution times).
    #[inline]
    pub fn sample_positive<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(rng).max(self.mean * 1e-3).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_shape_reduces_to_normal() {
        let m = Moments::from_measures(10.0, 4.0, 0.0, 0.0).unwrap();
        let cf = CornishFisher::new(&m).unwrap();
        // Median = mean; 97.5% quantile = mean + 1.96 sd.
        assert!((cf.quantile(0.5) - 10.0).abs() < 1e-2);
        assert!((cf.quantile(0.975) - (10.0 + 1.96 * 2.0)).abs() < 0.05);
    }

    #[test]
    fn sampled_moments_track_target() {
        let target = Moments::from_measures(50.0, 100.0, 0.6, 0.5).unwrap();
        let cf = CornishFisher::new(&target).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let sample: Vec<f64> = (0..200_000).map(|_| cf.sample(&mut rng)).collect();
        let got = Moments::from_sample(&sample).unwrap();
        assert!((got.mean - 50.0).abs() < 0.5, "mean {}", got.mean);
        assert!((got.std_dev() - 10.0).abs() < 0.5, "sd {}", got.std_dev());
        assert!((got.skewness - 0.6).abs() < 0.15, "skew {}", got.skewness);
    }

    #[test]
    fn quantile_is_monotone_even_for_extreme_shapes() {
        let target = Moments::from_measures(0.0, 1.0, 2.5, 8.0).unwrap();
        let cf = CornishFisher::new(&target).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=1000 {
            let q = cf.quantile(i as f64 / 1000.0);
            assert!(q >= prev, "fold-back at {i}");
            prev = q;
        }
    }

    #[test]
    fn positive_sampling() {
        let target = Moments::from_measures(1.0, 25.0, -1.0, 2.0).unwrap();
        let cf = CornishFisher::new(&target).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            assert!(cf.sample_positive(&mut rng) > 0.0);
        }
    }

    #[test]
    fn rejects_invalid_targets() {
        assert!(Moments::from_measures(1.0, 0.0, 0.0, 0.0).is_err());
        let broken = Moments {
            mean: f64::NAN,
            variance: 1.0,
            skewness: 0.0,
            kurtosis: 0.0,
            count: 0,
        };
        assert!(CornishFisher::new(&broken).is_err());
    }
}
