//! Gram-Charlier type-A expansion (§III-D2 of the paper; Kendall, *The
//! Advanced Theory of Statistics*, vol. 1).
//!
//! Given target mean μ, variance σ², skewness γ₁ and excess kurtosis γ₂, the
//! expansion approximates the density as
//!
//! ```text
//! f(x) = φ(z)/σ · [ 1 + γ₁/6 · He₃(z) + γ₂/24 · He₄(z) ],   z = (x − μ)/σ
//! ```
//!
//! where φ is the standard normal density and Heₙ are the probabilists'
//! Hermite polynomials. The expansion is exact in its first four moments but
//! is *not* guaranteed to be non-negative for large |γ₁|, |γ₂|; following
//! common practice (and because execution times and powers are positive) the
//! sampler clamps negative lobes to zero and renormalises, then verifies how
//! well the clamped density still reproduces the target moments.

use crate::moments::Moments;
use crate::sampler::TabulatedSampler;
use crate::{Result, StatsError};

/// Inverse square root of 2π, the normalising constant of φ.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A Gram-Charlier type-A density with the four target moments.
///
/// ```
/// use hetsched_stats::{GramCharlier, Moments};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Target: mean 100 s, sd 20 s, right-skewed execution times.
/// let target = Moments::from_measures(100.0, 400.0, 0.5, 0.3).unwrap();
/// let sampler = GramCharlier::new(&target).unwrap().positive_sampler().unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = sampler.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GramCharlier {
    mean: f64,
    std_dev: f64,
    skewness: f64,
    /// Excess kurtosis.
    kurtosis: f64,
}

/// Probabilists' Hermite polynomial He₃(z) = z³ − 3z.
#[inline]
pub fn hermite_he3(z: f64) -> f64 {
    z * (z * z - 3.0)
}

/// Probabilists' Hermite polynomial He₄(z) = z⁴ − 6z² + 3.
#[inline]
pub fn hermite_he4(z: f64) -> f64 {
    let z2 = z * z;
    z2 * (z2 - 6.0) + 3.0
}

impl GramCharlier {
    /// Builds the expansion for the given target [`Moments`].
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if the variance is not strictly
    /// positive or any moment is non-finite.
    pub fn new(target: &Moments) -> Result<Self> {
        if !(target.mean.is_finite()
            && target.variance.is_finite()
            && target.skewness.is_finite()
            && target.kurtosis.is_finite())
        {
            return Err(StatsError::InvalidParameter("non-finite moment"));
        }
        if target.variance <= 0.0 {
            return Err(StatsError::InvalidParameter("variance must be > 0"));
        }
        Ok(GramCharlier {
            mean: target.mean,
            std_dev: target.variance.sqrt(),
            skewness: target.skewness,
            kurtosis: target.kurtosis,
        })
    }

    /// Fits the expansion to a data sample (moments computed internally).
    ///
    /// # Errors
    ///
    /// Propagates moment-computation failures (short or constant samples).
    pub fn from_sample(sample: &[f64]) -> Result<Self> {
        let m = Moments::from_sample(sample)?;
        GramCharlier::new(&m)
    }

    /// Target mean μ.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Target standard deviation σ.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Target skewness γ₁.
    #[inline]
    pub fn skewness(&self) -> f64 {
        self.skewness
    }

    /// Target excess kurtosis γ₂.
    #[inline]
    pub fn kurtosis(&self) -> f64 {
        self.kurtosis
    }

    /// Evaluates the *signed* expansion density at `x`. May be negative in
    /// the tails when the shape coefficients are large.
    pub fn density(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        let phi = INV_SQRT_2PI * (-0.5 * z * z).exp() / self.std_dev;
        let correction =
            1.0 + self.skewness / 6.0 * hermite_he3(z) + self.kurtosis / 24.0 * hermite_he4(z);
        phi * correction
    }

    /// Evaluates the density clamped at zero — the function actually sampled.
    #[inline]
    pub fn clamped_density(&self, x: f64) -> f64 {
        self.density(x).max(0.0)
    }

    /// Builds an inverse-CDF sampler over `[lo, hi]` with `cells` grid
    /// cells, clamping negative lobes to zero.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] for an empty/invalid interval and
    /// [`StatsError::DegenerateDensity`] if the clamped density vanishes on
    /// the whole grid.
    pub fn sampler_on(&self, lo: f64, hi: f64, cells: usize) -> Result<TabulatedSampler> {
        TabulatedSampler::from_density(|x| self.clamped_density(x), lo, hi, cells)
    }

    /// Builds a sampler on the *positive* support `[max(ε, μ−6σ), μ+6σ]`,
    /// the configuration used for execution times and power draws (both
    /// strictly positive quantities).
    ///
    /// # Errors
    ///
    /// See [`GramCharlier::sampler_on`].
    pub fn positive_sampler(&self) -> Result<TabulatedSampler> {
        let lo = (self.mean - 6.0 * self.std_dev)
            .max(self.mean * 1e-3)
            .max(1e-9);
        let hi = self.mean + 6.0 * self.std_dev;
        self.sampler_on(lo, hi, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hermite_values() {
        assert_eq!(hermite_he3(0.0), 0.0);
        assert_eq!(hermite_he3(2.0), 2.0);
        assert_eq!(hermite_he4(0.0), 3.0);
        assert_eq!(hermite_he4(1.0), -2.0);
    }

    #[test]
    fn reduces_to_gaussian_for_zero_shape() {
        let m = Moments::from_measures(0.0, 1.0, 0.0, 0.0).unwrap();
        let gc = GramCharlier::new(&m).unwrap();
        // N(0,1) density at 0 is 1/sqrt(2π).
        assert!((gc.density(0.0) - INV_SQRT_2PI).abs() < 1e-12);
        // Symmetric.
        assert!((gc.density(1.3) - gc.density(-1.3)).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one_when_nonnegative() {
        let m = Moments::from_measures(10.0, 4.0, 0.3, 0.2).unwrap();
        let gc = GramCharlier::new(&m).unwrap();
        let (lo, hi, n) = (10.0 - 20.0, 10.0 + 20.0, 200_000);
        let h = (hi - lo) / n as f64;
        let integral: f64 = (0..n)
            .map(|i| gc.density(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral = {integral}");
    }

    #[test]
    fn expansion_has_target_moments_analytically() {
        // Numerically integrate x^k f(x) for a mildly shaped density and
        // check the four target moments are reproduced (the GC expansion is
        // exact in its first four moments when not clamped).
        let target = Moments::from_measures(5.0, 1.5, 0.4, 0.5).unwrap();
        let gc = GramCharlier::new(&target).unwrap();
        let (lo, hi, n) = (5.0 - 15.0, 5.0 + 15.0, 400_000);
        let h = (hi - lo) / n as f64;
        let mut raw = [0.0f64; 5];
        for i in 0..n {
            let x = lo + (i as f64 + 0.5) * h;
            let fx = gc.density(x) * h;
            let mut xp = 1.0;
            for r in raw.iter_mut() {
                *r += xp * fx;
                xp *= x;
            }
        }
        let mean = raw[1];
        let var = raw[2] - mean * mean;
        let m3 = raw[3] - 3.0 * mean * raw[2] + 2.0 * mean.powi(3);
        let m4 = raw[4] - 4.0 * mean * raw[3] + 6.0 * mean * mean * raw[2] - 3.0 * mean.powi(4);
        assert!((mean - 5.0).abs() < 1e-6);
        assert!((var - 1.5).abs() < 1e-5);
        assert!((m3 / var.powf(1.5) - 0.4).abs() < 1e-4);
        assert!((m4 / (var * var) - 3.0 - 0.5).abs() < 1e-3);
    }

    #[test]
    fn sampled_moments_match_target() {
        let target = Moments::from_measures(100.0, 400.0, 0.5, 0.4).unwrap();
        let gc = GramCharlier::new(&target).unwrap();
        let sampler = gc.positive_sampler().unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let sample: Vec<f64> = (0..200_000).map(|_| sampler.sample(&mut rng)).collect();
        let got = Moments::from_sample(&sample).unwrap();
        assert!((got.mean - 100.0).abs() / 100.0 < 0.01, "mean {}", got.mean);
        assert!(
            (got.std_dev() - 20.0).abs() / 20.0 < 0.03,
            "sd {}",
            got.std_dev()
        );
        assert!((got.skewness - 0.5).abs() < 0.15, "skew {}", got.skewness);
        assert!((got.kurtosis - 0.4).abs() < 0.4, "kurt {}", got.kurtosis);
    }

    #[test]
    fn rejects_bad_moments() {
        assert!(Moments::from_measures(1.0, -1.0, 0.0, 0.0).is_err());
        let m = Moments {
            mean: 1.0,
            variance: 0.0,
            skewness: 0.0,
            kurtosis: 0.0,
            count: 5,
        };
        assert!(GramCharlier::new(&m).is_err());
    }

    #[test]
    fn positive_sampler_never_returns_nonpositive() {
        let target = Moments::from_measures(2.0, 9.0, 1.0, 1.0).unwrap();
        let gc = GramCharlier::new(&target).unwrap();
        let sampler = gc.positive_sampler().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) > 0.0);
        }
    }
}
