//! Grid-based inverse-CDF sampling of an arbitrary one-dimensional density.
//!
//! The Gram-Charlier expansion has no closed-form quantile function, so the
//! synthetic-data pipeline tabulates the (clamped) density on a uniform grid,
//! builds the cumulative distribution by the trapezoid rule, and samples by
//! binary search plus linear interpolation. Construction is O(cells); each
//! sample is O(log cells) with zero allocation.

use crate::{Result, StatsError};
use rand::Rng;

/// Inverse-CDF sampler over a tabulated density.
#[derive(Debug, Clone)]
pub struct TabulatedSampler {
    lo: f64,
    step: f64,
    /// Normalised CDF at grid nodes; `cdf[0] == 0`, `cdf[last] == 1`.
    cdf: Vec<f64>,
}

impl TabulatedSampler {
    /// Tabulates `density` (assumed non-negative) on `[lo, hi]` using
    /// `cells` uniform cells (`cells + 1` nodes).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] for an invalid interval or
    /// `cells == 0`, [`StatsError::DegenerateDensity`] when the density is
    /// zero everywhere on the grid.
    pub fn from_density<F: Fn(f64) -> f64>(
        density: F,
        lo: f64,
        hi: f64,
        cells: usize,
    ) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(StatsError::InvalidParameter(
                "interval must be finite and non-empty",
            ));
        }
        if cells == 0 {
            return Err(StatsError::InvalidParameter("cells must be > 0"));
        }
        let step = (hi - lo) / cells as f64;
        let mut pdf = Vec::with_capacity(cells + 1);
        for i in 0..=cells {
            let f = density(lo + i as f64 * step);
            debug_assert!(f >= 0.0, "density must be non-negative, got {f}");
            pdf.push(f.max(0.0));
        }
        // Trapezoid-rule cumulative integral.
        let mut cdf = Vec::with_capacity(cells + 1);
        cdf.push(0.0);
        let mut acc = 0.0;
        for w in pdf.windows(2) {
            acc += 0.5 * (w[0] + w[1]) * step;
            cdf.push(acc);
        }
        let total = *cdf.last().expect("cdf has cells+1 >= 2 entries");
        if total <= 0.0 || !total.is_finite() {
            return Err(StatsError::DegenerateDensity);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against round-off at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(TabulatedSampler { lo, step, cdf })
    }

    /// Lower bound of the support grid.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support grid.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.lo + self.step * (self.cdf.len() - 1) as f64
    }

    /// Quantile function: maps `u ∈ [0, 1]` to a support value.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        // partition_point returns the first index with cdf[i] >= u; we want
        // the cell [i-1, i] bracketing u.
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .clamp(1, self.cdf.len() - 1);
        let (c0, c1) = (self.cdf[idx - 1], self.cdf[idx]);
        let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.0 };
        self.lo + self.step * ((idx - 1) as f64 + frac)
    }

    /// Draws one value.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Draws `n` values into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_density_gives_uniform_samples() {
        let s = TabulatedSampler::from_density(|_| 1.0, 0.0, 10.0, 100).unwrap();
        assert_eq!(s.quantile(0.0), 0.0);
        assert!((s.quantile(0.5) - 5.0).abs() < 1e-9);
        assert!((s.quantile(1.0) - 10.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = s.sample_n(&mut rng, 100_000);
        let m = Moments::from_sample(&sample).unwrap();
        assert!((m.mean - 5.0).abs() < 0.05);
        assert!((m.variance - 100.0 / 12.0).abs() < 0.2);
    }

    #[test]
    fn triangular_density_quantiles() {
        // f(x) = 2x on [0,1]; CDF = x², quantile = sqrt(u).
        let s = TabulatedSampler::from_density(|x| 2.0 * x, 0.0, 1.0, 4096).unwrap();
        for &u in &[0.1, 0.25, 0.5, 0.81, 0.99] {
            assert!((s.quantile(u) - u.sqrt()).abs() < 1e-3, "u = {u}");
        }
    }

    #[test]
    fn rejects_invalid_intervals() {
        assert!(TabulatedSampler::from_density(|_| 1.0, 1.0, 1.0, 10).is_err());
        assert!(TabulatedSampler::from_density(|_| 1.0, 2.0, 1.0, 10).is_err());
        assert!(TabulatedSampler::from_density(|_| 1.0, f64::NAN, 1.0, 10).is_err());
        assert!(TabulatedSampler::from_density(|_| 1.0, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn rejects_zero_density() {
        assert_eq!(
            TabulatedSampler::from_density(|_| 0.0, 0.0, 1.0, 16).unwrap_err(),
            StatsError::DegenerateDensity
        );
    }

    #[test]
    fn samples_stay_in_support() {
        let s = TabulatedSampler::from_density(|x| (-x).exp(), 0.5, 9.5, 256).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = s.sample(&mut rng);
            assert!((0.5..=9.5).contains(&v), "v = {v}");
        }
        assert_eq!(s.lo(), 0.5);
        assert!((s.hi() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone() {
        let s =
            TabulatedSampler::from_density(|x| 1.0 + (3.0 * x).sin().abs(), 0.0, 5.0, 512).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=1000 {
            let q = s.quantile(i as f64 / 1000.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn quantile_clamps_out_of_range_u() {
        let s = TabulatedSampler::from_density(|_| 1.0, 0.0, 1.0, 8).unwrap();
        assert_eq!(s.quantile(-0.5), 0.0);
        assert_eq!(s.quantile(1.5), 1.0);
    }
}
