//! Heterogeneity measures: mean, variance, coefficient of variation,
//! skewness, and kurtosis (the paper's "mvsk" quadruple, §III-D2).
//!
//! Skewness and kurtosis follow the conventional moment-ratio definitions
//! used by the heterogeneity-quantification literature the paper cites
//! (Al-Qawasmeh et al., *The Journal of Supercomputing* 57(1)):
//!
//! * skewness  γ₁ = m₃ / m₂^{3/2}
//! * kurtosis  γ₂ = m₄ / m₂² − 3   (excess kurtosis; 0 for a Gaussian)
//!
//! where mₖ is the k-th central sample moment with 1/n normalisation.

use crate::{Result, StatsError};

/// The four heterogeneity measures of a sample, plus the raw central moments
/// they derive from.
///
/// ```
/// use hetsched_stats::Moments;
///
/// let m = Moments::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert!((m.mean - 5.0).abs() < 1e-12);
/// assert!((m.variance - 4.0).abs() < 1e-12);
/// assert!((m.coefficient_of_variation() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (1/n normalisation).
    pub variance: f64,
    /// Moment skewness γ₁.
    pub skewness: f64,
    /// *Excess* kurtosis γ₂ (Gaussian ⇒ 0).
    pub kurtosis: f64,
    /// Number of observations the moments were computed from.
    pub count: usize,
}

impl Moments {
    /// Computes the heterogeneity measures of `sample`.
    ///
    /// Requires at least two observations (variance) and non-zero variance
    /// for the shape statistics to be defined.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] for samples shorter than 2 and
    /// [`StatsError::ZeroVariance`] when every observation is identical.
    pub fn from_sample(sample: &[f64]) -> Result<Self> {
        let mut acc = MomentAccumulator::new();
        for &x in sample {
            acc.push(x);
        }
        acc.finish()
    }

    /// Standard deviation √variance.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation σ/μ — the paper's dispersion-based
    /// heterogeneity measure. Undefined (NaN) for zero mean.
    #[inline]
    pub fn coefficient_of_variation(&self) -> f64 {
        self.std_dev() / self.mean
    }

    /// Builds a `Moments` directly from the four measures, for use as a
    /// *target* when constructing a [`crate::GramCharlier`] density without
    /// an underlying sample.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when any value is non-finite or the
    /// variance is not strictly positive.
    pub fn from_measures(mean: f64, variance: f64, skewness: f64, kurtosis: f64) -> Result<Self> {
        if !(mean.is_finite()
            && variance.is_finite()
            && skewness.is_finite()
            && kurtosis.is_finite())
        {
            return Err(StatsError::InvalidParameter("non-finite moment"));
        }
        if variance <= 0.0 {
            return Err(StatsError::InvalidParameter("variance must be > 0"));
        }
        Ok(Moments {
            mean,
            variance,
            skewness,
            kurtosis,
            count: 0,
        })
    }

    /// Largest relative discrepancy between `self` and `other` over the four
    /// measures, used to verify heterogeneity preservation. Mean and
    /// standard deviation are compared relatively; skewness and kurtosis
    /// absolutely (they are already scale-free and may be near zero).
    pub fn max_discrepancy(&self, other: &Moments) -> f64 {
        let rel = |a: f64, b: f64| ((a - b) / a.abs().max(1e-12)).abs();
        let mean_d = rel(self.mean, other.mean);
        let sd_d = rel(self.std_dev(), other.std_dev());
        let skew_d = (self.skewness - other.skewness).abs();
        let kurt_d = (self.kurtosis - other.kurtosis).abs();
        mean_d.max(sd_d).max(skew_d).max(kurt_d)
    }
}

/// One-pass accumulator for the first four central moments.
///
/// Uses the numerically stable pairwise update of Pébay (2008); this is the
/// same family of formulas as Welford's online variance, extended to the
/// third and fourth moments, so it is safe to stream millions of values
/// without catastrophic cancellation.
#[derive(Debug, Clone, Default)]
pub struct MomentAccumulator {
    n: usize,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl MomentAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations pushed so far.
    #[inline]
    pub fn count(&self) -> usize {
        self.n
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merges another accumulator into this one (parallel reduction step).
    pub fn merge(&mut self, other: &MomentAccumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let mean = self.mean + delta * nb / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }

    /// Finalises the accumulator into a [`Moments`].
    ///
    /// # Errors
    ///
    /// See [`Moments::from_sample`].
    pub fn finish(&self) -> Result<Moments> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: self.n,
            });
        }
        let n = self.n as f64;
        let variance = self.m2 / n;
        if variance <= 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let m3 = self.m3 / n;
        let m4 = self.m4 / n;
        Ok(Moments {
            mean: self.mean,
            variance,
            skewness: m3 / variance.powf(1.5),
            kurtosis: m4 / (variance * variance) - 3.0,
            count: self.n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_moments(sample: &[f64]) -> Moments {
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        let ck = |k: i32| sample.iter().map(|x| (x - mean).powi(k)).sum::<f64>() / n;
        let var = ck(2);
        Moments {
            mean,
            variance: var,
            skewness: ck(3) / var.powf(1.5),
            kurtosis: ck(4) / (var * var) - 3.0,
            count: sample.len(),
        }
    }

    #[test]
    fn matches_naive_two_pass() {
        let sample = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3, 2.3, 8.4];
        let got = Moments::from_sample(&sample).unwrap();
        let want = naive_moments(&sample);
        assert!((got.mean - want.mean).abs() < 1e-12);
        assert!((got.variance - want.variance).abs() < 1e-12);
        assert!((got.skewness - want.skewness).abs() < 1e-10);
        assert!((got.kurtosis - want.kurtosis).abs() < 1e-10);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        assert_eq!(
            Moments::from_sample(&[7.0; 8]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn too_short_sample_is_rejected() {
        assert_eq!(
            Moments::from_sample(&[1.0]),
            Err(StatsError::InsufficientData { needed: 2, got: 1 })
        );
        assert_eq!(
            Moments::from_sample(&[]),
            Err(StatsError::InsufficientData { needed: 2, got: 0 })
        );
    }

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let m = Moments::from_sample(&[-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
        assert!(m.skewness.abs() < 1e-12);
        assert!((m.mean).abs() < 1e-12);
    }

    #[test]
    fn uniform_excess_kurtosis_is_negative() {
        // Discrete uniform over many points approaches excess kurtosis -1.2.
        let sample: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = Moments::from_sample(&sample).unwrap();
        assert!((m.kurtosis + 1.2).abs() < 0.01, "kurtosis = {}", m.kurtosis);
    }

    #[test]
    fn merge_equals_single_stream() {
        let sample: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.71).collect();
        let mut whole = MomentAccumulator::new();
        for &x in &sample {
            whole.push(x);
        }
        let mut a = MomentAccumulator::new();
        let mut b = MomentAccumulator::new();
        for (i, &x) in sample.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        let w = whole.finish().unwrap();
        let m = a.finish().unwrap();
        assert!((w.mean - m.mean).abs() < 1e-10);
        assert!((w.variance - m.variance).abs() < 1e-8);
        assert!((w.skewness - m.skewness).abs() < 1e-8);
        assert!((w.kurtosis - m.kurtosis).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MomentAccumulator::new();
        a.push(1.0);
        a.push(2.0);
        a.push(4.0);
        let before = a.finish().unwrap();
        a.merge(&MomentAccumulator::new());
        assert_eq!(a.finish().unwrap(), before);

        let mut empty = MomentAccumulator::new();
        empty.merge(&a);
        assert_eq!(empty.finish().unwrap(), before);
    }

    #[test]
    fn cv_is_scale_free() {
        let base = [2.0, 3.0, 5.0, 9.0];
        let scaled: Vec<f64> = base.iter().map(|x| x * 42.0).collect();
        let a = Moments::from_sample(&base).unwrap();
        let b = Moments::from_sample(&scaled).unwrap();
        assert!((a.coefficient_of_variation() - b.coefficient_of_variation()).abs() < 1e-12);
        assert!((a.skewness - b.skewness).abs() < 1e-12);
        assert!((a.kurtosis - b.kurtosis).abs() < 1e-12);
    }

    #[test]
    fn from_measures_validates() {
        assert!(Moments::from_measures(1.0, 0.0, 0.0, 0.0).is_err());
        assert!(Moments::from_measures(1.0, f64::NAN, 0.0, 0.0).is_err());
        assert!(Moments::from_measures(1.0, 2.0, 0.5, -0.5).is_ok());
    }

    #[test]
    fn max_discrepancy_of_self_is_zero() {
        let m = Moments::from_sample(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(m.max_discrepancy(&m), 0.0);
    }
}
