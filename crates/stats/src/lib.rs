#![warn(missing_docs)]

//! Statistical substrate for the `hetsched` workspace.
//!
//! The synthetic data-set generator of the paper (§III-D2) characterises a
//! sample of execution times (or power draws) by four *heterogeneity
//! measures* — mean, coefficient of variation, skewness, and kurtosis — and
//! then reconstructs a probability density with those same moments using the
//! **Gram-Charlier type-A expansion** so that arbitrarily many new values can
//! be drawn while preserving the heterogeneity of the original data.
//!
//! This crate provides:
//!
//! * [`Moments`] / [`MomentAccumulator`] — one-pass central-moment
//!   computation (mean, variance, CV, skewness, excess kurtosis),
//! * [`GramCharlier`] — the expansion itself, with density evaluation,
//! * [`TabulatedSampler`] — grid-based inverse-CDF sampling from any
//!   non-negative-clamped density,
//! * [`Histogram`] — fixed-width binning used by tests and benches to verify
//!   that sampled data reproduces the target moments.

pub mod cornish_fisher;
pub mod gram_charlier;
pub mod histogram;
pub mod ks;
pub mod moments;
pub mod sampler;

pub use cornish_fisher::CornishFisher;
pub use gram_charlier::GramCharlier;
pub use histogram::Histogram;
pub use ks::{ks_critical_value, ks_statistic};
pub use moments::{MomentAccumulator, Moments};
pub use sampler::TabulatedSampler;

use std::fmt;

/// Errors produced by the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty or too small for the requested statistic.
    InsufficientData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// The sample variance is zero, so shape statistics are undefined.
    ZeroVariance,
    /// A parameter was not finite or out of its documented domain.
    InvalidParameter(&'static str),
    /// The (clamped) density integrated to zero over the support grid.
    DegenerateDensity,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need at least {needed} values, got {got}"
                )
            }
            StatsError::ZeroVariance => write!(f, "sample variance is zero"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::DegenerateDensity => {
                write!(f, "density integrates to zero over the support grid")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
