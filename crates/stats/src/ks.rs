//! Two-sample Kolmogorov-Smirnov statistic, used to verify that a
//! synthetic sample is distributed like the data it was fitted to — a
//! stricter check than matching the four moments.

use crate::{Result, StatsError};

/// The two-sample KS statistic `D = sup |F₁(x) − F₂(x)|` over the empirical
/// CDFs of `a` and `b`.
///
/// # Errors
///
/// [`StatsError::InsufficientData`] when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(d)
}

/// The asymptotic two-sample KS critical value at significance `alpha`
/// (commonly 0.05): `c(α)·√((n₁+n₂)/(n₁·n₂))` with
/// `c(α) = √(−ln(α/2)/2)`. Reject "same distribution" when the statistic
/// exceeds this.
///
/// # Errors
///
/// [`StatsError::InvalidParameter`] for `alpha` outside (0, 1) or empty
/// samples sizes.
pub fn ks_critical_value(n1: usize, n2: usize, alpha: f64) -> Result<f64> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
    }
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    let (n1, n2) = (n1 as f64, n2 as f64);
    Ok(c * ((n1 + n2) / (n1 * n2)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_small_case() {
        // F_a jumps at 1,3 (0.5 each); F_b jumps at 2,4.
        // sup diff = 0.5 (between 1 and 2).
        let a = [1.0, 3.0];
        let b = [2.0, 4.0];
        assert!((ks_statistic(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_stays_under_critical_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let d = ks_statistic(&a, &b).unwrap();
        let crit = ks_critical_value(2000, 2000, 0.01).unwrap();
        assert!(d < crit, "d = {d}, crit = {crit}");
    }

    #[test]
    fn different_distributions_exceed_critical_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() * 0.6).collect();
        let d = ks_statistic(&a, &b).unwrap();
        let crit = ks_critical_value(2000, 2000, 0.05).unwrap();
        assert!(d > crit, "d = {d}, crit = {crit}");
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [0.5, 1.5, 2.5, 9.0];
        let b = [0.4, 2.0, 3.0];
        assert_eq!(ks_statistic(&a, &b).unwrap(), ks_statistic(&b, &a).unwrap());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ks_statistic(&[], &[1.0]).is_err());
        assert!(ks_statistic(&[1.0], &[]).is_err());
        assert!(ks_critical_value(0, 5, 0.05).is_err());
        assert!(ks_critical_value(5, 5, 0.0).is_err());
        assert!(ks_critical_value(5, 5, 1.0).is_err());
    }
}
