//! Route dispatch: the glue from parsed [`Request`]s to
//! [`SchedulerService`] calls and back to [`Response`]s.
//!
//! # Contract
//!
//! - Every JSON response body is a [`crate::wire`] struct carrying a
//!   `schema` field; `/metrics` is the one text/plain endpoint.
//! - Service failures map through [`hetsched_core::Error::class`]:
//!   invalid input → 400, unknown resource → 404, internal → 500 — the
//!   handler never invents its own status for a service error.
//! - `POST /v1/jobs` answers 201 for a newly admitted job and 200 for a
//!   fingerprint-cache hit (`cached: true` in the body either way the
//!   client can rely on).
//! - `GET /v1/jobs/{id}/report` before completion answers 404 with the
//!   job's [`wire::JobStatusBody`] so a poller learns the live state
//!   from the same response.
//! - Unroutable paths answer 404, a routable path with a bad body 400.

use crate::http::{Request, Response};
use crate::router::{route, Route};
use crate::service::SchedulerService;
use crate::wire::{self, class_status, ErrorBody, JobRequest};
use hetsched_core::{CoreError, ErrorClass};

/// Handles one request end to end. Infallible by design: every failure
/// becomes an error [`Response`].
pub fn handle(service: &SchedulerService, request: &Request) -> Response {
    match route(&request.method, &request.path) {
        None => Response::json(
            404,
            &ErrorBody::new(
                ErrorClass::NotFound,
                format!("no endpoint {} {}", request.method, request.path),
            ),
        ),
        Some(Route::CreateJob) => create_job(service, request),
        Some(Route::JobStatus(id)) => match service.status(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
        Some(Route::JobReport(id)) => match service.report(&id) {
            Ok(Ok(report)) => Response::json(200, &report),
            // Not done yet: 404 carrying the live status body.
            Ok(Err(status)) => Response::json(404, &status),
            Err(e) => error_response(&e),
        },
        Some(Route::JobTrace(id)) => match service.trace(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
        Some(Route::JobWorkers(id)) => match service.workers(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
        Some(Route::CancelJob(id)) => match service.cancel(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
        Some(Route::Metrics) => Response::text(200, service.prometheus()),
        Some(Route::CreateStream) => create_stream(service, request),
        Some(Route::FeedStream(id)) => feed_stream(service, &id, request),
        Some(Route::StreamStatus(id)) => match service.stream_status(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
        Some(Route::StreamTimeline(id)) => match service.stream_timeline(&id) {
            Ok(body) => Response::json(200, &body),
            Err(e) => error_response(&e),
        },
    }
}

/// Parses a JSON request body, mapping UTF-8 and shape failures to one
/// 400 response.
fn parse_body<T: serde::DeserializeOwned>(request: &Request, what: &str) -> Result<T, Response> {
    let text = std::str::from_utf8(&request.body).map_err(|_| {
        Response::json(
            400,
            &ErrorBody::new(ErrorClass::InvalidInput, "request body is not UTF-8"),
        )
    })?;
    serde_json::from_str(text).map_err(|e| {
        Response::json(
            400,
            &ErrorBody::new(ErrorClass::InvalidInput, format!("invalid {what}: {e}")),
        )
    })
}

fn create_stream(service: &SchedulerService, request: &Request) -> Response {
    let parsed: wire::StreamRequest = match parse_body(request, "stream request") {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    match service.create_stream(&parsed) {
        Ok(created) => {
            let status = if created.resumed { 200 } else { 201 };
            Response::json(status, &created)
        }
        Err(e) => error_response(&e),
    }
}

fn feed_stream(service: &SchedulerService, id: &str, request: &Request) -> Response {
    let parsed: wire::StreamFeedRequest = match parse_body(request, "stream feed") {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    match service.feed_stream(id, &parsed) {
        Ok(body) => Response::json(200, &body),
        Err(e) => error_response(&e),
    }
}

fn create_job(service: &SchedulerService, request: &Request) -> Response {
    let parsed: JobRequest = match parse_body(request, "job request") {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    match service.submit(&parsed) {
        Ok(created) => {
            let status = if created.cached { 200 } else { 201 };
            Response::json(status, &created)
        }
        Err(e) => error_response(&e),
    }
}

/// The single mapping from the unified core error to an HTTP response.
fn error_response(error: &CoreError) -> Response {
    let class = error.class();
    Response::json(
        class_status(class),
        &ErrorBody::new(class, error.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use crate::wire;
    use hetsched_core::{CampaignSpec, DatasetId, ExperimentConfig, SeedKind};

    fn service(tag: &str) -> SchedulerService {
        let dir =
            std::env::temp_dir().join(format!("hetsched-handlers-{tag}-{}", std::process::id()));
        SchedulerService::start(ServeConfig::new(dir)).unwrap()
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn unknown_endpoint_is_404_with_error_body() {
        let svc = service("routes");
        let resp = handle(&svc, &request("GET", "/nope", ""));
        assert_eq!(resp.status, 404);
        let body: ErrorBody = serde_json::from_str(std::str::from_utf8(&resp.body).unwrap())
            .expect("error body parses");
        assert_eq!(body.class, "not-found");
        svc.shutdown();
    }

    #[test]
    fn malformed_and_invalid_bodies_are_400() {
        let svc = service("badbody");
        let resp = handle(&svc, &request("POST", "/v1/jobs", "{not json"));
        assert_eq!(resp.status, 400);

        // Parses but fails validation server-side (zero replicates).
        let base = ExperimentConfig::builder(DatasetId::One)
            .tasks(20)
            .population(8)
            .snapshots(vec![2])
            .seeds(vec![SeedKind::Random])
            .build()
            .unwrap();
        let mut spec = CampaignSpec::single(&base);
        spec.replicates = 0;
        let body = serde_json::to_string(&wire::JobRequest::new(spec)).unwrap();
        let resp = handle(&svc, &request("POST", "/v1/jobs", &body));
        assert_eq!(resp.status, 400);
        let err: ErrorBody =
            serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(err.class, "invalid-input");
        svc.shutdown();
    }

    #[test]
    fn stream_endpoints_route_bodies_and_errors() {
        let svc = service("streams");
        // Bad JSON and wrong schema are 400s.
        let resp = handle(&svc, &request("POST", "/v1/streams", "{not json"));
        assert_eq!(resp.status, 400);
        let bad = serde_json::to_string(&wire::StreamRequest {
            schema: "hetsched.stream-request.v0".into(),
            ..wire::StreamRequest::new("s1", 1, 20.0)
        })
        .unwrap();
        assert_eq!(
            handle(&svc, &request("POST", "/v1/streams", &bad)).status,
            400
        );
        // Unknown streams are 404s on every read/feed route.
        assert_eq!(
            handle(&svc, &request("GET", "/v1/streams/s404", "")).status,
            404
        );
        assert_eq!(
            handle(&svc, &request("GET", "/v1/streams/s404/timeline", "")).status,
            404
        );
        // A fresh stream answers 201, its reads 200.
        let mut req_body = wire::StreamRequest::new("s1", 1, 20.0);
        req_body.policy = Some("gupta".into());
        let body = serde_json::to_string(&req_body).unwrap();
        assert_eq!(
            handle(&svc, &request("POST", "/v1/streams", &body)).status,
            201
        );
        assert_eq!(
            handle(&svc, &request("POST", "/v1/streams", &body)).status,
            200
        );
        let resp = handle(&svc, &request("GET", "/v1/streams/s1", ""));
        assert_eq!(resp.status, 200);
        let status: wire::StreamStatusBody =
            serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(status.schema, wire::STREAM_STATUS_SCHEMA);
        assert_eq!(status.ticks, 0);
        svc.shutdown();
    }

    #[test]
    fn unknown_job_maps_to_404_and_metrics_serves_text() {
        let svc = service("status");
        let resp = handle(&svc, &request("GET", "/v1/jobs/j404", ""));
        assert_eq!(resp.status, 404);
        let resp = handle(&svc, &request("DELETE", "/v1/jobs/j404", ""));
        assert_eq!(resp.status, 404);
        let resp = handle(&svc, &request("GET", "/v1/jobs/j404/trace", ""));
        assert_eq!(resp.status, 404);
        let resp = handle(&svc, &request("GET", "/v1/jobs/j404/workers", ""));
        assert_eq!(resp.status, 404);
        let resp = handle(&svc, &request("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("hetsched_serve_jobs{state=\"queued\"} 0"));
        svc.shutdown();
    }
}
