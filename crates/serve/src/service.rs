//! The application layer: a job registry plus a shared worker pool that
//! runs submitted campaigns through the existing
//! [`hetsched_core::Campaign`] machinery — watchdog, deadline,
//! quarantine, and manifest resume all unchanged.
//!
//! Jobs are keyed two ways: by server-assigned id (the REST `{id}`) and
//! by [`CampaignSpec::fingerprint`]. The fingerprint index is the
//! completed-front cache: a repeated identical `POST` resolves to the
//! existing job — finished, running, or queued — without enqueuing any
//! new cells. Each job writes its manifest to
//! `<state-dir>/job-<fingerprint>.manifest.jsonl`, so even after a
//! daemon restart a resubmitted spec replays from the manifest instead
//! of re-executing.

use crate::wire::{
    self, JobCreated, JobReportBody, JobRequest, JobStatusBody, JobTraceBody, JobWorkersBody,
    StreamCreated, StreamFeedRequest, StreamRequest, StreamStatusBody, StreamTimelineBody,
};
use hetsched_core::{
    load_manifest_records, read_trace, replay_records, summarise_manifest, Campaign,
    CampaignOutcome, CampaignSpec, CancelToken, CoreError, DatasetId, EngineStreamSpec,
    ExperimentConfig, Framework, HorizonConfig, MetricsRegistry, MetricsSnapshot, OptimizerSpec,
    Result, SeedKind, StreamConfig, StreamRunner, TelemetryObserver, TraceWriter, WorkerSummary,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding per-job campaign manifests.
    pub state_dir: PathBuf,
    /// Worker threads draining the job queue (the concurrency level for
    /// whole campaigns; cells within a campaign still parallelise on the
    /// process-wide rayon pool).
    pub workers: usize,
    /// Default per-cell watchdog budget for jobs that do not set one.
    pub cell_timeout: Option<Duration>,
}

impl ServeConfig {
    /// A config with `state_dir`, two workers, and no watchdog default.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: 2,
            cell_timeout: None,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobPhase {
    fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state, behind the job's own lock.
struct JobState {
    phase: JobPhase,
    error: Option<String>,
    outcome: Option<CampaignOutcome>,
}

/// One submitted campaign.
struct Job {
    id: String,
    fingerprint: String,
    spec: CampaignSpec,
    cell_timeout: Option<Duration>,
    token: CancelToken,
    registry: Arc<MetricsRegistry>,
    state: Mutex<JobState>,
}

impl Job {
    fn status_body(&self) -> JobStatusBody {
        let state = self.state.lock().expect("job state lock");
        JobStatusBody {
            schema: wire::JOB_STATUS_SCHEMA.to_string(),
            job_id: self.id.clone(),
            fingerprint: self.fingerprint.clone(),
            state: state.phase.label().to_string(),
            error: state.error.clone(),
            metrics: self.registry.snapshot(),
        }
    }
}

/// Both lookup maps behind one lock, so admission (check fingerprint,
/// insert job) is atomic.
#[derive(Default)]
struct JobTable {
    by_id: HashMap<String, Arc<Job>>,
    by_fingerprint: HashMap<String, String>,
}

/// One open rolling-horizon stream. Feeds and ticks run synchronously on
/// the request thread under the stream's own lock (streams are
/// independent, so two streams never serialise on each other).
struct StreamEntry {
    id: String,
    config: StreamConfig,
    runner: Mutex<StreamRunner>,
}

struct Inner {
    config: ServeConfig,
    jobs: Mutex<JobTable>,
    streams: Mutex<HashMap<String, Arc<StreamEntry>>>,
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

/// The scheduler service: cheaply cloneable handle, shared by every
/// connection thread.
#[derive(Clone)]
pub struct SchedulerService {
    inner: Arc<Inner>,
}

impl SchedulerService {
    /// Creates the state directory and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on zero workers, [`CoreError::Io`]
    /// when the state directory cannot be created.
    pub fn start(config: ServeConfig) -> Result<SchedulerService> {
        if config.workers == 0 {
            return Err(CoreError::InvalidConfig("serve needs >= 1 worker"));
        }
        std::fs::create_dir_all(&config.state_dir).map_err(|e| {
            CoreError::Io(format!(
                "create state dir {}: {e}",
                config.state_dir.display()
            ))
        })?;
        // The span mux makes per-job timelines available through
        // `GET /v1/jobs/{id}/trace`: each running job routes its trace id
        // to its own writer. A pre-existing non-mux sink only costs the
        // endpoint its data, never the daemon its startup.
        if hetsched_core::install_tracing(tracing::Level::TRACE, None).is_err() {
            tracing::warn!("a span sink is already installed; job traces will not be recorded");
        }
        let (tx, rx) = mpsc::channel::<Arc<Job>>();
        let rx = Arc::new(Mutex::new(rx));
        let inner = Arc::new(Inner {
            config,
            jobs: Mutex::new(JobTable::default()),
            streams: Mutex::new(HashMap::new()),
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        });
        let mut handles = Vec::new();
        for i in 0..inner.config.workers {
            let inner_for_worker = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            handles.push(
                thread::Builder::new()
                    .name(format!("hetsched-serve-worker-{i}"))
                    .spawn(move || worker_loop(inner_for_worker, rx))
                    .expect("spawn worker thread"),
            );
        }
        *inner.workers.lock().expect("workers lock") = handles;
        Ok(SchedulerService { inner })
    }

    /// Admits a campaign: validates the request, resolves the
    /// fingerprint cache, and either returns the existing job (`cached`)
    /// or enqueues a new one.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] (→ 400) on a schema mismatch, an
    /// invalid spec, or a non-positive timeout; [`CoreError::Io`]
    /// (→ 500) when the daemon is shutting down.
    pub fn submit(&self, request: &JobRequest) -> Result<JobCreated> {
        if request.schema != wire::JOB_REQUEST_SCHEMA {
            return Err(CoreError::InvalidConfig(
                "unsupported job-request schema (expected hetsched.job-request.v1)",
            ));
        }
        request.campaign.validate()?;
        let cell_timeout = match request.cell_timeout_s {
            Some(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
            Some(_) => {
                return Err(CoreError::InvalidConfig(
                    "cell_timeout_s must be a positive number of seconds",
                ))
            }
            None => self.inner.config.cell_timeout,
        };
        let fingerprint = request.campaign.fingerprint();

        let mut table = self.inner.jobs.lock().expect("job table lock");
        if let Some(existing_id) = table.by_fingerprint.get(&fingerprint) {
            let job = table.by_id[existing_id].clone();
            let phase = job.state.lock().expect("job state lock").phase;
            return Ok(JobCreated {
                schema: wire::JOB_CREATED_SCHEMA.to_string(),
                job_id: job.id.clone(),
                fingerprint,
                state: phase.label().to_string(),
                cached: true,
            });
        }
        let id = format!("j{:03}", self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let job = Arc::new(Job {
            id: id.clone(),
            fingerprint: fingerprint.clone(),
            spec: request.campaign.clone(),
            cell_timeout,
            token: CancelToken::new(),
            registry: Arc::new(MetricsRegistry::new()),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                error: None,
                outcome: None,
            }),
        });
        table.by_id.insert(id.clone(), Arc::clone(&job));
        table.by_fingerprint.insert(fingerprint.clone(), id.clone());
        drop(table);

        let queue = self.inner.queue.lock().expect("queue lock");
        match queue.as_ref().map(|tx| tx.send(Arc::clone(&job))) {
            Some(Ok(())) => {}
            _ => return Err(CoreError::Io("job queue is shut down".to_string())),
        }
        Ok(JobCreated {
            schema: wire::JOB_CREATED_SCHEMA.to_string(),
            job_id: id,
            fingerprint,
            state: JobPhase::Queued.label().to_string(),
            cached: false,
        })
    }

    fn job(&self, id: &str) -> Result<Arc<Job>> {
        self.inner
            .jobs
            .lock()
            .expect("job table lock")
            .by_id
            .get(id)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("job {id}")))
    }

    /// Live progress for a job.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn status(&self, id: &str) -> Result<JobStatusBody> {
        Ok(self.job(id)?.status_body())
    }

    /// The finished report, or the job's status while it is not done —
    /// the handler turns the latter into the 404-with-status response.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn report(&self, id: &str) -> Result<std::result::Result<JobReportBody, JobStatusBody>> {
        let job = self.job(id)?;
        let state = job.state.lock().expect("job state lock");
        if state.phase == JobPhase::Done {
            let outcome = state.outcome.as_ref().expect("done job has an outcome");
            return Ok(Ok(JobReportBody::from_outcome(
                &job.id,
                &job.fingerprint,
                outcome,
            )));
        }
        drop(state);
        Ok(Err(job.status_body()))
    }

    /// The job's recorded span timeline: every completed span appended
    /// to its trace file so far (empty until the campaign starts).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id; [`CoreError::Io`]
    /// on a corrupt trace file.
    pub fn trace(&self, id: &str) -> Result<JobTraceBody> {
        let job = self.job(id)?;
        let path = trace_path(&self.inner.config, &job.fingerprint);
        let spans = if path.exists() {
            read_trace(&path)?
        } else {
            Vec::new()
        };
        Ok(JobTraceBody {
            schema: wire::JOB_TRACE_SCHEMA.to_string(),
            job_id: job.id.clone(),
            fingerprint: job.fingerprint.clone(),
            spans,
        })
    }

    /// The per-worker view of a job's campaign, computed purely from its
    /// manifest: surviving cell records per worker plus the replayed
    /// lease state machine (steals, fenced appends, wall-clock). Empty
    /// for a job whose manifest has no worker-tagged records — i.e. one
    /// only ever run single-process by the daemon itself; external
    /// `hetsched work` processes sharing the job's manifest each get a
    /// row.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id;
    /// [`CoreError::Manifest`] on a corrupt or foreign manifest.
    pub fn workers(&self, id: &str) -> Result<JobWorkersBody> {
        let job = self.job(id)?;
        Ok(JobWorkersBody {
            schema: wire::JOB_WORKERS_SCHEMA.to_string(),
            job_id: job.id.clone(),
            fingerprint: job.fingerprint.clone(),
            workers: manifest_workers(&manifest_path(&self.inner.config, &job.fingerprint))?,
        })
    }

    /// Cancels a job via its [`CancelToken`] (idempotent): a queued job
    /// flips to `cancelled` immediately, a running one stops admitting
    /// cells and is marked by its worker when the campaign unwinds.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn cancel(&self, id: &str) -> Result<JobStatusBody> {
        let job = self.job(id)?;
        job.token.cancel();
        {
            let mut state = job.state.lock().expect("job state lock");
            if state.phase == JobPhase::Queued {
                state.phase = JobPhase::Cancelled;
            }
        }
        Ok(job.status_body())
    }

    /// Opens a rolling-horizon stream, or resumes one: if the id is live
    /// in memory the existing stream is returned (idempotent POST), and
    /// if only its manifest survives — e.g. after a daemon restart — the
    /// manifest is replayed, which by determinism reproduces the
    /// interrupted stream's state bit-for-bit. Either way the request's
    /// configuration must match the stream's.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] (→ 400) on a schema mismatch, an
    /// invalid id/parameter, or a configuration clash;
    /// [`CoreError::Manifest`]/[`CoreError::Io`] (→ 500) on a corrupt
    /// manifest or filesystem failure.
    pub fn create_stream(&self, request: &StreamRequest) -> Result<StreamCreated> {
        if request.schema != wire::STREAM_REQUEST_SCHEMA {
            return Err(CoreError::InvalidConfig(
                "unsupported stream-request schema (expected hetsched.stream-request.v1)",
            ));
        }
        let config = stream_config(request)?;
        let mut streams = self.inner.streams.lock().expect("stream table lock");
        if let Some(entry) = streams.get(&request.stream_id) {
            if entry.config != config {
                return Err(CoreError::InvalidConfig(
                    "stream exists with a different configuration",
                ));
            }
            let runner = entry.runner.lock().expect("stream lock");
            return Ok(StreamCreated {
                schema: wire::STREAM_CREATED_SCHEMA.to_string(),
                stream_id: entry.id.clone(),
                optimizer: runner.header().optimizer,
                resumed: true,
                ticks: runner.scheduler().ticks() as u64,
                fed_until: runner.fed_until(),
            });
        }
        let system = stream_system(request.set)?;
        let path = stream_path(&self.inner.config, &request.stream_id);
        let runner = StreamRunner::resume(system, config, &path)?;
        let resumed = runner.scheduler().ticks() > 0 || runner.fed_until() > 0.0;
        let created = StreamCreated {
            schema: wire::STREAM_CREATED_SCHEMA.to_string(),
            stream_id: request.stream_id.clone(),
            optimizer: runner.header().optimizer,
            resumed,
            ticks: runner.scheduler().ticks() as u64,
            fed_until: runner.fed_until(),
        };
        streams.insert(
            request.stream_id.clone(),
            Arc::new(StreamEntry {
                id: request.stream_id.clone(),
                config,
                runner: Mutex::new(runner),
            }),
        );
        tracing::info!(
            "stream {} {} ({})",
            created.stream_id,
            if resumed { "resumed" } else { "opened" },
            created.optimizer
        );
        Ok(created)
    }

    fn stream(&self, id: &str) -> Result<Arc<StreamEntry>> {
        self.inner
            .streams
            .lock()
            .expect("stream table lock")
            .get(id)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("stream {id}")))
    }

    /// Appends one arrival window to a stream and synchronously runs
    /// every horizon the fed window now covers; answers with the
    /// post-tick status.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id;
    /// [`CoreError::InvalidConfig`] (→ 400) on a schema mismatch or a
    /// retreating window; internal errors from the scheduler/manifest.
    pub fn feed_stream(&self, id: &str, request: &StreamFeedRequest) -> Result<StreamStatusBody> {
        if request.schema != wire::STREAM_FEED_SCHEMA {
            return Err(CoreError::InvalidConfig(
                "unsupported stream-feed schema (expected hetsched.stream-feed.v1)",
            ));
        }
        let entry = self.stream(id)?;
        let mut runner = entry.runner.lock().expect("stream lock");
        runner.feed(request.until, request.tasks.clone())?;
        let horizon = runner.config().horizon.horizon;
        while runner.scheduler().now() + horizon <= runner.fed_until() {
            runner.tick()?;
        }
        Ok(stream_status(&entry.id, &runner))
    }

    /// Committed-schedule totals for a stream.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn stream_status(&self, id: &str) -> Result<StreamStatusBody> {
        let entry = self.stream(id)?;
        let runner = entry.runner.lock().expect("stream lock");
        Ok(stream_status(&entry.id, &runner))
    }

    /// The stream's committed schedule: per-task placements plus the
    /// per-tick records.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn stream_timeline(&self, id: &str) -> Result<StreamTimelineBody> {
        let entry = self.stream(id)?;
        let runner = entry.runner.lock().expect("stream lock");
        Ok(StreamTimelineBody {
            schema: wire::STREAM_TIMELINE_SCHEMA.to_string(),
            stream_id: entry.id.clone(),
            records: runner.scheduler().records().to_vec(),
            timeline: runner.scheduler().timeline().to_vec(),
        })
    }

    /// One [`MetricsSnapshot`] folded across every job's registry
    /// (`None` before the first submission).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let table = self.inner.jobs.lock().expect("job table lock");
        let snapshots: Vec<MetricsSnapshot> = table
            .by_id
            .values()
            .map(|j| j.registry.snapshot())
            .collect();
        MetricsSnapshot::aggregate(&snapshots)
    }

    /// The Prometheus exposition for `GET /metrics`: the aggregated
    /// campaign metrics plus per-state job gauges.
    pub fn prometheus(&self) -> String {
        let mut out = self
            .metrics_snapshot()
            .map(|s| s.prometheus())
            .unwrap_or_default();
        let table = self.inner.jobs.lock().expect("job table lock");
        let mut counts = [0u64; 5];
        for job in table.by_id.values() {
            let phase = job.state.lock().expect("job state lock").phase;
            counts[phase as usize] += 1;
        }
        drop(table);
        out.push_str("# TYPE hetsched_serve_jobs gauge\n");
        for (phase, count) in [
            JobPhase::Queued,
            JobPhase::Running,
            JobPhase::Done,
            JobPhase::Failed,
            JobPhase::Cancelled,
        ]
        .into_iter()
        .zip(counts)
        {
            out.push_str(&format!(
                "hetsched_serve_jobs{{state=\"{}\"}} {count}\n",
                phase.label()
            ));
        }
        out.push_str(&self.worker_gauges());
        out
    }

    /// Per-worker gauges for distributed jobs: one sample per (job,
    /// worker) replayed from the job's manifest. Jobs whose manifests
    /// carry no worker-tagged records (single-process) contribute
    /// nothing, so the plain daemon's exposition is unchanged.
    fn worker_gauges(&self) -> String {
        let jobs: Vec<(String, String)> = {
            let table = self.inner.jobs.lock().expect("job table lock");
            table
                .by_id
                .values()
                .map(|j| (j.id.clone(), j.fingerprint.clone()))
                .collect()
        };
        let mut rows = String::new();
        for (job_id, fingerprint) in jobs {
            let path = manifest_path(&self.inner.config, &fingerprint);
            let workers = match manifest_workers(&path) {
                Ok(workers) => workers,
                Err(e) => {
                    tracing::warn!("job {job_id}: cannot replay manifest for /metrics: {e}");
                    continue;
                }
            };
            for w in workers {
                for (name, value) in [
                    ("cells", w.cells as u64),
                    ("leases_stolen", w.stolen as u64),
                    ("appends_fenced", w.fenced as u64),
                ] {
                    rows.push_str(&format!(
                        "hetsched_serve_job_worker_{name}{{job=\"{job_id}\",\
                         worker=\"{}\"}} {value}\n",
                        w.worker
                    ));
                }
            }
        }
        if rows.is_empty() {
            return rows;
        }
        let mut out = String::new();
        for name in ["cells", "leases_stolen", "appends_fenced"] {
            out.push_str(&format!("# TYPE hetsched_serve_job_worker_{name} gauge\n"));
        }
        out.push_str(&rows);
        out
    }

    /// Graceful shutdown: cancels every job, closes the queue, and joins
    /// the workers (waits for in-flight campaigns to unwind past their
    /// current cell). Idempotent.
    pub fn shutdown(&self) {
        {
            let table = self.inner.jobs.lock().expect("job table lock");
            for job in table.by_id.values() {
                job.token.cancel();
            }
        }
        *self.inner.queue.lock().expect("queue lock") = None;
        let handles: Vec<_> = self
            .inner
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Where a stream's manifest lives, keyed by the client-chosen id so a
/// restarted daemon resumes the same file.
fn stream_path(config: &ServeConfig, id: &str) -> PathBuf {
    config.state_dir.join(format!("stream-{id}.manifest.jsonl"))
}

/// Validates a [`StreamRequest`] and assembles the [`StreamConfig`].
fn stream_config(request: &StreamRequest) -> Result<StreamConfig> {
    if request.stream_id.is_empty() || request.stream_id.len() > 64 {
        return Err(CoreError::InvalidConfig(
            "stream_id must be 1-64 characters",
        ));
    }
    if !request
        .stream_id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(CoreError::InvalidConfig(
            "stream_id may only contain [A-Za-z0-9_-]",
        ));
    }
    if !(request.horizon.is_finite() && request.horizon > 0.0) {
        return Err(CoreError::InvalidConfig("horizon must be finite and > 0"));
    }
    let energy_budget = match request.energy_budget {
        Some(b) if b.is_finite() && b > 0.0 => b,
        Some(_) => {
            return Err(CoreError::InvalidConfig(
                "energy_budget must be finite and > 0",
            ))
        }
        None => f64::INFINITY,
    };
    let horizon = HorizonConfig {
        horizon: request.horizon,
        energy_budget,
    };
    let optimizer = match &request.policy {
        Some(policy) => OptimizerSpec::Policy(policy.parse().map_err(|_| {
            CoreError::InvalidConfig("unknown policy (expected max-utility or gupta)")
        })?),
        None => {
            let algorithm = match &request.algorithm {
                Some(name) => name.parse().map_err(|_| {
                    CoreError::InvalidConfig("unknown algorithm (expected nsga2, moead, or spea2)")
                })?,
                None => hetsched_core::Algorithm::Nsga2,
            };
            let engine = hetsched_core::EngineConfig::builder()
                .algorithm(algorithm)
                .population(request.population.unwrap_or(24))
                .generations(request.generations.unwrap_or(8))
                .build()
                .map_err(|_| CoreError::InvalidConfig("invalid engine parameters"))?;
            OptimizerSpec::Engine(EngineStreamSpec {
                engine,
                seed_kind: SeedKind::MinMinCompletionTime,
                rng_seed: request.rng_seed.unwrap_or(0x5EED),
                stream: 0,
                warm_start: request.warm_start.unwrap_or(true),
            })
        }
    };
    Ok(StreamConfig { horizon, optimizer })
}

/// The machine inventory a stream schedules onto (the data set's system;
/// the trace the framework also generates is discarded — arrivals come
/// over the wire).
fn stream_system(set: u8) -> Result<hetsched_core::HcSystem> {
    let dataset = match set {
        1 => DatasetId::One,
        2 => DatasetId::Two,
        3 => DatasetId::Three,
        _ => return Err(CoreError::InvalidConfig("set must be 1, 2, or 3")),
    };
    let cfg = ExperimentConfig::scaled(dataset, 0.001);
    Ok(Framework::new(&cfg)?.system().clone())
}

/// Assembles the status body from a stream's runner state.
fn stream_status(id: &str, runner: &StreamRunner) -> StreamStatusBody {
    let sched = runner.scheduler();
    let last = sched.records().last();
    StreamStatusBody {
        schema: wire::STREAM_STATUS_SCHEMA.to_string(),
        stream_id: id.to_string(),
        optimizer: runner.header().optimizer,
        ticks: sched.ticks() as u64,
        now: sched.now(),
        fed_until: runner.fed_until(),
        tasks: last.map_or(0, |r| r.tasks as u64),
        frozen: last.map_or(0, |r| r.frozen as u64),
        rejected: sched.rejected().len() as u64,
        utility: last.map_or(0.0, |r| r.utility),
        energy: last.map_or(0.0, |r| r.energy),
    }
}

/// Where a job's span timeline lives, keyed by fingerprint like its
/// manifest so a resubmitted spec appends to the same file.
fn trace_path(config: &ServeConfig, fingerprint: &str) -> PathBuf {
    config
        .state_dir
        .join(format!("job-{fingerprint}.trace.jsonl"))
}

/// Where a job's campaign manifest lives: also the rendezvous point for
/// external `hetsched work` processes joining the job's campaign.
fn manifest_path(config: &ServeConfig, fingerprint: &str) -> PathBuf {
    config
        .state_dir
        .join(format!("job-{fingerprint}.manifest.jsonl"))
}

/// Per-worker rollups replayed from a job manifest (empty when the file
/// does not exist yet or carries no worker-tagged records).
fn manifest_workers(path: &Path) -> Result<Vec<WorkerSummary>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    match load_manifest_records(path)? {
        None => Ok(Vec::new()),
        Some((fingerprint, records)) => {
            let view = replay_records(&records);
            Ok(summarise_manifest(fingerprint, &view).workers)
        }
    }
}

fn worker_loop(inner: Arc<Inner>, rx: Arc<Mutex<mpsc::Receiver<Arc<Job>>>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the run, so
        // the other workers keep draining while this one executes.
        let job = match rx.lock().expect("queue receiver lock").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: shutdown
        };
        run_job(&inner, &job);
    }
}

fn run_job(inner: &Inner, job: &Job) {
    {
        let mut state = job.state.lock().expect("job state lock");
        if state.phase != JobPhase::Queued {
            return; // cancelled while queued
        }
        state.phase = JobPhase::Running;
    }
    if job.token.is_cancelled() {
        job.state.lock().expect("job state lock").phase = JobPhase::Cancelled;
        return;
    }
    tracing::info!("job {} starting ({} cells)", job.id, job.spec.cells().len());
    // Jobs share the process-wide rayon pool across `workers` concurrent
    // campaigns, so each job's fair share — not the whole host — is what
    // its heartbeat/ETA arithmetic should divide by.
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    job.registry
        .set_workers((host / inner.config.workers).max(1));
    let observer = Arc::new(TelemetryObserver::new(Arc::clone(&job.registry)));
    let mut campaign = Campaign::new(job.spec.clone())
        .with_cancel_token(job.token.clone())
        .with_observer(observer);
    if let Some(timeout) = job.cell_timeout {
        campaign = campaign.cell_timeout(timeout);
    }
    let manifest = manifest_path(&inner.config, &job.fingerprint);
    // Root span of the job's trace tree; its trace id is routed to the
    // job's own writer so `GET /v1/jobs/{id}/trace` serves exactly this
    // job's timeline even with several jobs in flight.
    let job_span = tracing::Span::root(tracing::Level::INFO, module_path!(), "job")
        .with("job_id", job.id.clone())
        .with("fingerprint", job.fingerprint.clone());
    let trace_route = job_span.is_enabled().then(|| job_span.context().trace_id());
    if let (Some(trace_id), Some(mux)) = (trace_route, hetsched_core::installed_mux()) {
        match TraceWriter::create(trace_path(&inner.config, &job.fingerprint)) {
            Ok(writer) => mux.register(trace_id, Arc::new(writer)),
            Err(e) => tracing::warn!("job {}: cannot open trace file: {e}", job.id),
        }
    }
    let in_job = job_span.enter();
    let result = campaign.run(Some(&manifest));
    drop(in_job);
    drop(job_span); // close the root span before detaching its writer
    if let (Some(trace_id), Some(mux)) = (trace_route, hetsched_core::installed_mux()) {
        if let Some(writer) = mux.deregister(trace_id) {
            writer.flush_writer();
        }
    }
    let mut state = job.state.lock().expect("job state lock");
    match result {
        Ok(outcome) => {
            if outcome.is_complete() {
                state.phase = JobPhase::Done;
            } else if job.token.is_cancelled() {
                state.phase = JobPhase::Cancelled;
                state.error = Some("cancelled before completion".to_string());
            } else {
                state.phase = JobPhase::Failed;
                state.error = Some(format!(
                    "{} cells failed, {} skipped",
                    outcome.failed.len(),
                    outcome.skipped.len()
                ));
            }
            state.outcome = Some(outcome);
        }
        Err(e) => {
            state.phase = JobPhase::Failed;
            state.error = Some(e.to_string());
        }
    }
    tracing::info!("job {} finished: {}", job.id, state.phase.label());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::{DatasetId, ExperimentConfig, SeedKind};

    fn tiny_request() -> JobRequest {
        let base = ExperimentConfig::builder(DatasetId::One)
            .tasks(20)
            .population(8)
            .snapshots(vec![2])
            .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
            .build()
            .unwrap();
        JobRequest::new(CampaignSpec::single(&base))
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hetsched-serve-{tag}-{}", std::process::id()))
    }

    fn wait_done(service: &SchedulerService, id: &str) -> JobStatusBody {
        for _ in 0..600 {
            let status = service.status(id).unwrap();
            if status.state != "queued" && status.state != "running" {
                return status;
            }
            thread::sleep(Duration::from_millis(20));
        }
        panic!("job {id} never settled");
    }

    #[test]
    fn submit_run_report_and_cache_hit() {
        let dir = temp_state_dir("basic");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let created = service.submit(&tiny_request()).unwrap();
        assert!(!created.cached);
        assert_eq!(created.state, "queued");

        let status = wait_done(&service, &created.job_id);
        assert_eq!(status.state, "done", "error: {:?}", status.error);
        assert!(status.metrics.cells_finished > 0);

        let report = service.report(&created.job_id).unwrap().unwrap();
        assert_eq!(report.schema, wire::JOB_REPORT_SCHEMA);
        assert_eq!(report.reports.len(), 1);
        assert!(report.failed.is_empty());

        // Identical resubmission hits the fingerprint cache: same job,
        // no new cells started.
        let started_before = service
            .status(&created.job_id)
            .unwrap()
            .metrics
            .cells_started;
        let again = service.submit(&tiny_request()).unwrap();
        assert!(again.cached);
        assert_eq!(again.job_id, created.job_id);
        assert_eq!(again.state, "done");
        let started_after = service
            .status(&created.job_id)
            .unwrap()
            .metrics
            .cells_started;
        assert_eq!(started_before, started_after);

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workers_view_is_empty_for_single_process_jobs() {
        let dir = temp_state_dir("workers-empty");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let created = service.submit(&tiny_request()).unwrap();
        let status = wait_done(&service, &created.job_id);
        assert_eq!(status.state, "done", "error: {:?}", status.error);
        let body = service.workers(&created.job_id).unwrap();
        assert_eq!(body.schema, wire::JOB_WORKERS_SCHEMA);
        assert_eq!(body.job_id, created.job_id);
        assert!(
            body.workers.is_empty(),
            "daemon-run cells are untagged: {:?}",
            body.workers
        );
        assert!(service.workers("j999").is_err());
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workers_view_reports_external_workers_from_the_manifest() {
        let dir = temp_state_dir("workers-dist");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An external `hetsched work` process runs the whole campaign
        // into the job's manifest path before the job is submitted; the
        // daemon then resumes from the manifest (zero cells executed)
        // and the workers view reports the external worker's rows.
        let request = tiny_request();
        let fingerprint = request.campaign.fingerprint();
        let config = ServeConfig::new(&dir);
        let manifest = manifest_path(&config, &fingerprint);
        let campaign = Campaign::new(request.campaign.clone());
        let outcome = hetsched_core::Worker::new(campaign, "ext-worker-1")
            .run(&manifest)
            .unwrap();
        assert_eq!(outcome.executed, 2);

        let service = SchedulerService::start(config).unwrap();
        let created = service.submit(&request).unwrap();
        let status = wait_done(&service, &created.job_id);
        assert_eq!(status.state, "done", "error: {:?}", status.error);
        let body = service.workers(&created.job_id).unwrap();
        assert_eq!(body.workers.len(), 1, "{:?}", body.workers);
        assert_eq!(body.workers[0].worker, "ext-worker-1");
        assert_eq!(body.workers[0].cells, 2);
        assert_eq!(body.workers[0].stolen, 0);
        assert_eq!(body.workers[0].fenced, 0);
        // The per-worker gauges surface in the Prometheus exposition.
        let prom = service.prometheus();
        assert!(
            prom.contains(
                "hetsched_serve_job_worker_cells{job=\"j001\",worker=\"ext-worker-1\"} 2"
            ),
            "{prom}"
        );
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_jobs_are_not_found_and_bad_specs_rejected() {
        let dir = temp_state_dir("errors");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let err = service.status("j999").unwrap_err();
        assert_eq!(err.class(), hetsched_core::ErrorClass::NotFound);

        let mut bad = tiny_request();
        bad.campaign.replicates = 0;
        let err = service.submit(&bad).unwrap_err();
        assert_eq!(err.class(), hetsched_core::ErrorClass::InvalidInput);

        let mut wrong_schema = tiny_request();
        wrong_schema.schema = "hetsched.job-request.v0".to_string();
        assert!(service.submit(&wrong_schema).is_err());

        let mut bad_timeout = tiny_request();
        bad_timeout.cell_timeout_s = Some(-1.0);
        assert!(service.submit(&bad_timeout).is_err());

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_before_completion_returns_status() {
        let dir = temp_state_dir("pending");
        // Zero-throughput pool is impossible (workers >= 1), so submit a
        // job and immediately ask: depending on timing the answer is the
        // pending status or the report — both well-formed. Force the
        // pending side with a cancelled-at-admission job.
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let created = service.submit(&tiny_request()).unwrap();
        let _ = service.cancel(&created.job_id);
        let settled = wait_done(&service, &created.job_id);
        if settled.state == "cancelled" {
            let pending = service.report(&created.job_id).unwrap();
            assert!(pending.is_err(), "cancelled job must not serve a report");
        }
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn stream_request(id: &str) -> StreamRequest {
        let mut req = StreamRequest::new(id, 1, 20.0);
        req.population = Some(8);
        req.generations = Some(4);
        req
    }

    fn window(until: f64) -> StreamFeedRequest {
        let mut arrivals = hetsched_core::ArrivalStream::new(
            "poisson:1.5".parse().unwrap(),
            7,
            5,
            hetsched_core::TufPolicy::essc_default(),
        );
        StreamFeedRequest {
            schema: wire::STREAM_FEED_SCHEMA.to_string(),
            until,
            tasks: arrivals.until(until).unwrap(),
        }
    }

    #[test]
    fn stream_create_feed_and_restart_resume() {
        let dir = temp_state_dir("stream");
        let _ = std::fs::remove_dir_all(&dir);
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let req = stream_request("s-test");
        let created = service.create_stream(&req).unwrap();
        assert!(!created.resumed);
        assert_eq!(created.optimizer, "engine:nsga2");
        // Idempotent re-POST returns the live stream.
        assert!(service.create_stream(&req).unwrap().resumed);
        // A clashing configuration is rejected.
        let mut other = req.clone();
        other.horizon = 30.0;
        assert!(service.create_stream(&other).is_err());

        // One window covering two horizons → two synchronous ticks.
        let status = service.feed_stream("s-test", &window(40.0)).unwrap();
        assert_eq!(status.ticks, 2);
        assert_eq!(status.now, 40.0);
        assert!(status.tasks > 0);
        let timeline = service.stream_timeline("s-test").unwrap();
        assert_eq!(timeline.records.len(), 2);
        assert!(!timeline.timeline.is_empty());

        // Daemon restart: the manifest alone resumes the stream to the
        // same committed schedule.
        service.shutdown();
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let resumed = service.create_stream(&req).unwrap();
        assert!(resumed.resumed);
        assert_eq!(resumed.ticks, 2);
        assert_eq!(resumed.fed_until, 40.0);
        let replayed = service.stream_timeline("s-test").unwrap();
        assert_eq!(replayed.records, timeline.records);
        assert_eq!(replayed.timeline, timeline.timeline);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_requests_are_validated() {
        let dir = temp_state_dir("stream-bad");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let cases: Vec<StreamRequest> = vec![
            {
                let mut r = stream_request("ok");
                r.schema = "hetsched.stream-request.v0".into();
                r
            },
            stream_request("bad/../id"),
            stream_request(""),
            {
                let mut r = stream_request("ok");
                r.horizon = 0.0;
                r
            },
            {
                let mut r = stream_request("ok");
                r.set = 9;
                r
            },
            {
                let mut r = stream_request("ok");
                r.energy_budget = Some(-1.0);
                r
            },
            {
                let mut r = stream_request("ok");
                r.policy = Some("thorough".into());
                r
            },
            {
                let mut r = stream_request("ok");
                r.algorithm = Some("ga".into());
                r
            },
        ];
        for bad in cases {
            let err = service.create_stream(&bad).unwrap_err();
            assert_eq!(
                err.class(),
                hetsched_core::ErrorClass::InvalidInput,
                "{bad:?}"
            );
        }
        // Unknown ids are 404s; a retreating feed window is rejected.
        assert!(service.stream_status("nope").is_err());
        assert!(service.stream_timeline("nope").is_err());
        assert!(service.feed_stream("nope", &window(20.0)).is_err());
        service.create_stream(&stream_request("retreat")).unwrap();
        service.feed_stream("retreat", &window(20.0)).unwrap();
        let mut stale = window(40.0);
        stale.tasks.retain(|t| t.arrival < 10.0);
        stale.until = 40.0;
        assert!(
            service.feed_stream("retreat", &stale).is_err(),
            "arrivals behind the committed frontier must be rejected"
        );
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_streams_run_without_engine_state() {
        let dir = temp_state_dir("stream-policy");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let mut req = StreamRequest::new("gupta-stream", 1, 15.0);
        req.policy = Some("gupta".into());
        let created = service.create_stream(&req).unwrap();
        assert_eq!(created.optimizer, "policy:gupta");
        let status = service.feed_stream("gupta-stream", &window(30.0)).unwrap();
        assert_eq!(status.ticks, 2);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_workers_is_invalid() {
        let mut config = ServeConfig::new(temp_state_dir("zero"));
        config.workers = 0;
        assert!(SchedulerService::start(config).is_err());
    }
}
