//! The application layer: a job registry plus a shared worker pool that
//! runs submitted campaigns through the existing
//! [`hetsched_core::Campaign`] machinery — watchdog, deadline,
//! quarantine, and manifest resume all unchanged.
//!
//! Jobs are keyed two ways: by server-assigned id (the REST `{id}`) and
//! by [`CampaignSpec::fingerprint`]. The fingerprint index is the
//! completed-front cache: a repeated identical `POST` resolves to the
//! existing job — finished, running, or queued — without enqueuing any
//! new cells. Each job writes its manifest to
//! `<state-dir>/job-<fingerprint>.manifest.jsonl`, so even after a
//! daemon restart a resubmitted spec replays from the manifest instead
//! of re-executing.

use crate::wire::{self, JobCreated, JobReportBody, JobRequest, JobStatusBody, JobTraceBody};
use hetsched_core::{
    read_trace, Campaign, CampaignOutcome, CampaignSpec, CancelToken, CoreError, MetricsRegistry,
    MetricsSnapshot, Result, TelemetryObserver, TraceWriter,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding per-job campaign manifests.
    pub state_dir: PathBuf,
    /// Worker threads draining the job queue (the concurrency level for
    /// whole campaigns; cells within a campaign still parallelise on the
    /// process-wide rayon pool).
    pub workers: usize,
    /// Default per-cell watchdog budget for jobs that do not set one.
    pub cell_timeout: Option<Duration>,
}

impl ServeConfig {
    /// A config with `state_dir`, two workers, and no watchdog default.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: 2,
            cell_timeout: None,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobPhase {
    fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state, behind the job's own lock.
struct JobState {
    phase: JobPhase,
    error: Option<String>,
    outcome: Option<CampaignOutcome>,
}

/// One submitted campaign.
struct Job {
    id: String,
    fingerprint: String,
    spec: CampaignSpec,
    cell_timeout: Option<Duration>,
    token: CancelToken,
    registry: Arc<MetricsRegistry>,
    state: Mutex<JobState>,
}

impl Job {
    fn status_body(&self) -> JobStatusBody {
        let state = self.state.lock().expect("job state lock");
        JobStatusBody {
            schema: wire::JOB_STATUS_SCHEMA.to_string(),
            job_id: self.id.clone(),
            fingerprint: self.fingerprint.clone(),
            state: state.phase.label().to_string(),
            error: state.error.clone(),
            metrics: self.registry.snapshot(),
        }
    }
}

/// Both lookup maps behind one lock, so admission (check fingerprint,
/// insert job) is atomic.
#[derive(Default)]
struct JobTable {
    by_id: HashMap<String, Arc<Job>>,
    by_fingerprint: HashMap<String, String>,
}

struct Inner {
    config: ServeConfig,
    jobs: Mutex<JobTable>,
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

/// The scheduler service: cheaply cloneable handle, shared by every
/// connection thread.
#[derive(Clone)]
pub struct SchedulerService {
    inner: Arc<Inner>,
}

impl SchedulerService {
    /// Creates the state directory and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on zero workers, [`CoreError::Io`]
    /// when the state directory cannot be created.
    pub fn start(config: ServeConfig) -> Result<SchedulerService> {
        if config.workers == 0 {
            return Err(CoreError::InvalidConfig("serve needs >= 1 worker"));
        }
        std::fs::create_dir_all(&config.state_dir).map_err(|e| {
            CoreError::Io(format!(
                "create state dir {}: {e}",
                config.state_dir.display()
            ))
        })?;
        // The span mux makes per-job timelines available through
        // `GET /v1/jobs/{id}/trace`: each running job routes its trace id
        // to its own writer. A pre-existing non-mux sink only costs the
        // endpoint its data, never the daemon its startup.
        if hetsched_core::install_tracing(tracing::Level::TRACE, None).is_err() {
            tracing::warn!("a span sink is already installed; job traces will not be recorded");
        }
        let (tx, rx) = mpsc::channel::<Arc<Job>>();
        let rx = Arc::new(Mutex::new(rx));
        let inner = Arc::new(Inner {
            config,
            jobs: Mutex::new(JobTable::default()),
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        });
        let mut handles = Vec::new();
        for i in 0..inner.config.workers {
            let inner_for_worker = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            handles.push(
                thread::Builder::new()
                    .name(format!("hetsched-serve-worker-{i}"))
                    .spawn(move || worker_loop(inner_for_worker, rx))
                    .expect("spawn worker thread"),
            );
        }
        *inner.workers.lock().expect("workers lock") = handles;
        Ok(SchedulerService { inner })
    }

    /// Admits a campaign: validates the request, resolves the
    /// fingerprint cache, and either returns the existing job (`cached`)
    /// or enqueues a new one.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] (→ 400) on a schema mismatch, an
    /// invalid spec, or a non-positive timeout; [`CoreError::Io`]
    /// (→ 500) when the daemon is shutting down.
    pub fn submit(&self, request: &JobRequest) -> Result<JobCreated> {
        if request.schema != wire::JOB_REQUEST_SCHEMA {
            return Err(CoreError::InvalidConfig(
                "unsupported job-request schema (expected hetsched.job-request.v1)",
            ));
        }
        request.campaign.validate()?;
        let cell_timeout = match request.cell_timeout_s {
            Some(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
            Some(_) => {
                return Err(CoreError::InvalidConfig(
                    "cell_timeout_s must be a positive number of seconds",
                ))
            }
            None => self.inner.config.cell_timeout,
        };
        let fingerprint = request.campaign.fingerprint();

        let mut table = self.inner.jobs.lock().expect("job table lock");
        if let Some(existing_id) = table.by_fingerprint.get(&fingerprint) {
            let job = table.by_id[existing_id].clone();
            let phase = job.state.lock().expect("job state lock").phase;
            return Ok(JobCreated {
                schema: wire::JOB_CREATED_SCHEMA.to_string(),
                job_id: job.id.clone(),
                fingerprint,
                state: phase.label().to_string(),
                cached: true,
            });
        }
        let id = format!("j{:03}", self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let job = Arc::new(Job {
            id: id.clone(),
            fingerprint: fingerprint.clone(),
            spec: request.campaign.clone(),
            cell_timeout,
            token: CancelToken::new(),
            registry: Arc::new(MetricsRegistry::new()),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                error: None,
                outcome: None,
            }),
        });
        table.by_id.insert(id.clone(), Arc::clone(&job));
        table.by_fingerprint.insert(fingerprint.clone(), id.clone());
        drop(table);

        let queue = self.inner.queue.lock().expect("queue lock");
        match queue.as_ref().map(|tx| tx.send(Arc::clone(&job))) {
            Some(Ok(())) => {}
            _ => return Err(CoreError::Io("job queue is shut down".to_string())),
        }
        Ok(JobCreated {
            schema: wire::JOB_CREATED_SCHEMA.to_string(),
            job_id: id,
            fingerprint,
            state: JobPhase::Queued.label().to_string(),
            cached: false,
        })
    }

    fn job(&self, id: &str) -> Result<Arc<Job>> {
        self.inner
            .jobs
            .lock()
            .expect("job table lock")
            .by_id
            .get(id)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("job {id}")))
    }

    /// Live progress for a job.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn status(&self, id: &str) -> Result<JobStatusBody> {
        Ok(self.job(id)?.status_body())
    }

    /// The finished report, or the job's status while it is not done —
    /// the handler turns the latter into the 404-with-status response.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn report(&self, id: &str) -> Result<std::result::Result<JobReportBody, JobStatusBody>> {
        let job = self.job(id)?;
        let state = job.state.lock().expect("job state lock");
        if state.phase == JobPhase::Done {
            let outcome = state.outcome.as_ref().expect("done job has an outcome");
            return Ok(Ok(JobReportBody::from_outcome(
                &job.id,
                &job.fingerprint,
                outcome,
            )));
        }
        drop(state);
        Ok(Err(job.status_body()))
    }

    /// The job's recorded span timeline: every completed span appended
    /// to its trace file so far (empty until the campaign starts).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id; [`CoreError::Io`]
    /// on a corrupt trace file.
    pub fn trace(&self, id: &str) -> Result<JobTraceBody> {
        let job = self.job(id)?;
        let path = trace_path(&self.inner.config, &job.fingerprint);
        let spans = if path.exists() {
            read_trace(&path)?
        } else {
            Vec::new()
        };
        Ok(JobTraceBody {
            schema: wire::JOB_TRACE_SCHEMA.to_string(),
            job_id: job.id.clone(),
            fingerprint: job.fingerprint.clone(),
            spans,
        })
    }

    /// Cancels a job via its [`CancelToken`] (idempotent): a queued job
    /// flips to `cancelled` immediately, a running one stops admitting
    /// cells and is marked by its worker when the campaign unwinds.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] (→ 404) for an unknown id.
    pub fn cancel(&self, id: &str) -> Result<JobStatusBody> {
        let job = self.job(id)?;
        job.token.cancel();
        {
            let mut state = job.state.lock().expect("job state lock");
            if state.phase == JobPhase::Queued {
                state.phase = JobPhase::Cancelled;
            }
        }
        Ok(job.status_body())
    }

    /// One [`MetricsSnapshot`] folded across every job's registry
    /// (`None` before the first submission).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let table = self.inner.jobs.lock().expect("job table lock");
        let snapshots: Vec<MetricsSnapshot> = table
            .by_id
            .values()
            .map(|j| j.registry.snapshot())
            .collect();
        MetricsSnapshot::aggregate(&snapshots)
    }

    /// The Prometheus exposition for `GET /metrics`: the aggregated
    /// campaign metrics plus per-state job gauges.
    pub fn prometheus(&self) -> String {
        let mut out = self
            .metrics_snapshot()
            .map(|s| s.prometheus())
            .unwrap_or_default();
        let table = self.inner.jobs.lock().expect("job table lock");
        let mut counts = [0u64; 5];
        for job in table.by_id.values() {
            let phase = job.state.lock().expect("job state lock").phase;
            counts[phase as usize] += 1;
        }
        drop(table);
        out.push_str("# TYPE hetsched_serve_jobs gauge\n");
        for (phase, count) in [
            JobPhase::Queued,
            JobPhase::Running,
            JobPhase::Done,
            JobPhase::Failed,
            JobPhase::Cancelled,
        ]
        .into_iter()
        .zip(counts)
        {
            out.push_str(&format!(
                "hetsched_serve_jobs{{state=\"{}\"}} {count}\n",
                phase.label()
            ));
        }
        out
    }

    /// Graceful shutdown: cancels every job, closes the queue, and joins
    /// the workers (waits for in-flight campaigns to unwind past their
    /// current cell). Idempotent.
    pub fn shutdown(&self) {
        {
            let table = self.inner.jobs.lock().expect("job table lock");
            for job in table.by_id.values() {
                job.token.cancel();
            }
        }
        *self.inner.queue.lock().expect("queue lock") = None;
        let handles: Vec<_> = self
            .inner
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Where a job's span timeline lives, keyed by fingerprint like its
/// manifest so a resubmitted spec appends to the same file.
fn trace_path(config: &ServeConfig, fingerprint: &str) -> PathBuf {
    config
        .state_dir
        .join(format!("job-{fingerprint}.trace.jsonl"))
}

fn worker_loop(inner: Arc<Inner>, rx: Arc<Mutex<mpsc::Receiver<Arc<Job>>>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the run, so
        // the other workers keep draining while this one executes.
        let job = match rx.lock().expect("queue receiver lock").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: shutdown
        };
        run_job(&inner, &job);
    }
}

fn run_job(inner: &Inner, job: &Job) {
    {
        let mut state = job.state.lock().expect("job state lock");
        if state.phase != JobPhase::Queued {
            return; // cancelled while queued
        }
        state.phase = JobPhase::Running;
    }
    if job.token.is_cancelled() {
        job.state.lock().expect("job state lock").phase = JobPhase::Cancelled;
        return;
    }
    tracing::info!("job {} starting ({} cells)", job.id, job.spec.cells().len());
    // Jobs share the process-wide rayon pool across `workers` concurrent
    // campaigns, so each job's fair share — not the whole host — is what
    // its heartbeat/ETA arithmetic should divide by.
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    job.registry
        .set_workers((host / inner.config.workers).max(1));
    let observer = Arc::new(TelemetryObserver::new(Arc::clone(&job.registry)));
    let mut campaign = Campaign::new(job.spec.clone())
        .with_cancel_token(job.token.clone())
        .with_observer(observer);
    if let Some(timeout) = job.cell_timeout {
        campaign = campaign.cell_timeout(timeout);
    }
    let manifest = inner
        .config
        .state_dir
        .join(format!("job-{}.manifest.jsonl", job.fingerprint));
    // Root span of the job's trace tree; its trace id is routed to the
    // job's own writer so `GET /v1/jobs/{id}/trace` serves exactly this
    // job's timeline even with several jobs in flight.
    let job_span = tracing::Span::root(tracing::Level::INFO, module_path!(), "job")
        .with("job_id", job.id.clone())
        .with("fingerprint", job.fingerprint.clone());
    let trace_route = job_span.is_enabled().then(|| job_span.context().trace_id());
    if let (Some(trace_id), Some(mux)) = (trace_route, hetsched_core::installed_mux()) {
        match TraceWriter::create(trace_path(&inner.config, &job.fingerprint)) {
            Ok(writer) => mux.register(trace_id, Arc::new(writer)),
            Err(e) => tracing::warn!("job {}: cannot open trace file: {e}", job.id),
        }
    }
    let in_job = job_span.enter();
    let result = campaign.run(Some(&manifest));
    drop(in_job);
    drop(job_span); // close the root span before detaching its writer
    if let (Some(trace_id), Some(mux)) = (trace_route, hetsched_core::installed_mux()) {
        if let Some(writer) = mux.deregister(trace_id) {
            writer.flush_writer();
        }
    }
    let mut state = job.state.lock().expect("job state lock");
    match result {
        Ok(outcome) => {
            if outcome.is_complete() {
                state.phase = JobPhase::Done;
            } else if job.token.is_cancelled() {
                state.phase = JobPhase::Cancelled;
                state.error = Some("cancelled before completion".to_string());
            } else {
                state.phase = JobPhase::Failed;
                state.error = Some(format!(
                    "{} cells failed, {} skipped",
                    outcome.failed.len(),
                    outcome.skipped.len()
                ));
            }
            state.outcome = Some(outcome);
        }
        Err(e) => {
            state.phase = JobPhase::Failed;
            state.error = Some(e.to_string());
        }
    }
    tracing::info!("job {} finished: {}", job.id, state.phase.label());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::{DatasetId, ExperimentConfig, SeedKind};

    fn tiny_request() -> JobRequest {
        let base = ExperimentConfig::builder(DatasetId::One)
            .tasks(20)
            .population(8)
            .snapshots(vec![2])
            .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
            .build()
            .unwrap();
        JobRequest::new(CampaignSpec::single(&base))
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hetsched-serve-{tag}-{}", std::process::id()))
    }

    fn wait_done(service: &SchedulerService, id: &str) -> JobStatusBody {
        for _ in 0..600 {
            let status = service.status(id).unwrap();
            if status.state != "queued" && status.state != "running" {
                return status;
            }
            thread::sleep(Duration::from_millis(20));
        }
        panic!("job {id} never settled");
    }

    #[test]
    fn submit_run_report_and_cache_hit() {
        let dir = temp_state_dir("basic");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let created = service.submit(&tiny_request()).unwrap();
        assert!(!created.cached);
        assert_eq!(created.state, "queued");

        let status = wait_done(&service, &created.job_id);
        assert_eq!(status.state, "done", "error: {:?}", status.error);
        assert!(status.metrics.cells_finished > 0);

        let report = service.report(&created.job_id).unwrap().unwrap();
        assert_eq!(report.schema, wire::JOB_REPORT_SCHEMA);
        assert_eq!(report.reports.len(), 1);
        assert!(report.failed.is_empty());

        // Identical resubmission hits the fingerprint cache: same job,
        // no new cells started.
        let started_before = service
            .status(&created.job_id)
            .unwrap()
            .metrics
            .cells_started;
        let again = service.submit(&tiny_request()).unwrap();
        assert!(again.cached);
        assert_eq!(again.job_id, created.job_id);
        assert_eq!(again.state, "done");
        let started_after = service
            .status(&created.job_id)
            .unwrap()
            .metrics
            .cells_started;
        assert_eq!(started_before, started_after);

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_jobs_are_not_found_and_bad_specs_rejected() {
        let dir = temp_state_dir("errors");
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let err = service.status("j999").unwrap_err();
        assert_eq!(err.class(), hetsched_core::ErrorClass::NotFound);

        let mut bad = tiny_request();
        bad.campaign.replicates = 0;
        let err = service.submit(&bad).unwrap_err();
        assert_eq!(err.class(), hetsched_core::ErrorClass::InvalidInput);

        let mut wrong_schema = tiny_request();
        wrong_schema.schema = "hetsched.job-request.v0".to_string();
        assert!(service.submit(&wrong_schema).is_err());

        let mut bad_timeout = tiny_request();
        bad_timeout.cell_timeout_s = Some(-1.0);
        assert!(service.submit(&bad_timeout).is_err());

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_before_completion_returns_status() {
        let dir = temp_state_dir("pending");
        // Zero-throughput pool is impossible (workers >= 1), so submit a
        // job and immediately ask: depending on timing the answer is the
        // pending status or the report — both well-formed. Force the
        // pending side with a cancelled-at-admission job.
        let service = SchedulerService::start(ServeConfig::new(&dir)).unwrap();
        let created = service.submit(&tiny_request()).unwrap();
        let _ = service.cancel(&created.job_id);
        let settled = wait_done(&service, &created.job_id);
        if settled.state == "cancelled" {
            let pending = service.report(&created.job_id).unwrap();
            assert!(pending.is_err(), "cancelled job must not serve a report");
        }
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_workers_is_invalid() {
        let mut config = ServeConfig::new(temp_state_dir("zero"));
        config.workers = 0;
        assert!(SchedulerService::start(config).is_err());
    }
}
