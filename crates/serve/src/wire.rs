//! The versioned JSON bodies served over HTTP.
//!
//! Every body carries a `schema` field (e.g. `hetsched.job-status.v1`)
//! so clients can detect drift the way the campaign manifest's version
//! header already does: a consumer checks the schema string before
//! trusting the shape. The vendored serde derive rejects missing fields,
//! which doubles as shape enforcement on the way in — an old client
//! POSTing a pre-v1 body gets a 400, not a half-parsed struct.

use hetsched_core::{CampaignOutcome, CampaignReport, CampaignSpec, CellId, CellRecord};
use hetsched_core::{ErrorClass, MetricsSnapshot};
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

/// Schema tag for [`JobRequest`].
pub const JOB_REQUEST_SCHEMA: &str = "hetsched.job-request.v1";
/// Schema tag for [`JobCreated`].
pub const JOB_CREATED_SCHEMA: &str = "hetsched.job-created.v1";
/// Schema tag for [`JobStatusBody`]. v2: the embedded
/// [`MetricsSnapshot`] gained the five lease counters.
pub const JOB_STATUS_SCHEMA: &str = "hetsched.job-status.v2";
/// Schema tag for [`JobReportBody`].
pub const JOB_REPORT_SCHEMA: &str = "hetsched.job-report.v1";
/// Schema tag for [`JobTraceBody`].
pub const JOB_TRACE_SCHEMA: &str = "hetsched.job-trace.v1";
/// Schema tag for [`JobWorkersBody`].
pub const JOB_WORKERS_SCHEMA: &str = "hetsched.job-workers.v1";
/// Schema tag for [`ErrorBody`].
pub const ERROR_SCHEMA: &str = "hetsched.error.v1";
/// Schema tag for [`StreamRequest`].
pub const STREAM_REQUEST_SCHEMA: &str = "hetsched.stream-request.v1";
/// Schema tag for [`StreamCreated`].
pub const STREAM_CREATED_SCHEMA: &str = "hetsched.stream-created.v1";
/// Schema tag for [`StreamFeedRequest`].
pub const STREAM_FEED_SCHEMA: &str = "hetsched.stream-feed.v1";
/// Schema tag for [`StreamStatusBody`].
pub const STREAM_STATUS_SCHEMA: &str = "hetsched.stream-status.v1";
/// Schema tag for [`StreamTimelineBody`].
pub const STREAM_TIMELINE_SCHEMA: &str = "hetsched.stream-timeline.v1";

/// `POST /v1/jobs` request body: the campaign to run. The spec names the
/// datasets (real ETC/EPC matrix or synth spec via [`CampaignSpec`]'s
/// dataset axis), algorithms, and replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Must equal [`JOB_REQUEST_SCHEMA`]; anything else is a 400.
    pub schema: String,
    /// The grid to run, validated server-side before admission.
    pub campaign: CampaignSpec,
    /// Optional per-cell watchdog budget in seconds (falls back to the
    /// daemon's `--cell-timeout` when absent).
    pub cell_timeout_s: Option<f64>,
}

impl JobRequest {
    /// A request for `campaign` with the current schema tag.
    pub fn new(campaign: CampaignSpec) -> Self {
        JobRequest {
            schema: JOB_REQUEST_SCHEMA.to_string(),
            campaign,
            cell_timeout_s: None,
        }
    }
}

// `cell_timeout_s` is genuinely optional on the wire (curl users should
// not have to spell `null`), so the serde impls are hand-written — the
// vendored derive would make a missing field a hard error.
impl Serialize for JobRequest {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = vec![
            ("schema".to_string(), serde::to_value(&self.schema)),
            ("campaign".to_string(), serde::to_value(&self.campaign)),
        ];
        if let Some(timeout) = self.cell_timeout_s {
            entries.push(("cell_timeout_s".to_string(), serde::to_value(&timeout)));
        }
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for JobRequest {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private::{from_field, into_object};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "JobRequest")?;
        let schema: String = from_field(&mut entries, "schema")?;
        let campaign: CampaignSpec = from_field(&mut entries, "campaign")?;
        let cell_timeout_s: Option<f64> = if entries.iter().any(|(k, _)| k == "cell_timeout_s") {
            from_field(&mut entries, "cell_timeout_s")?
        } else {
            None
        };
        Ok(JobRequest {
            schema,
            campaign,
            cell_timeout_s,
        })
    }
}

/// `POST /v1/jobs` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCreated {
    /// [`JOB_CREATED_SCHEMA`].
    pub schema: String,
    /// Server-assigned job id, the `{id}` of the other endpoints.
    pub job_id: String,
    /// [`CampaignSpec::fingerprint`] of the submitted spec — also the
    /// fingerprint-cache key and the manifest header value.
    pub fingerprint: String,
    /// Job state at admission (`queued`, or the cached job's state).
    pub state: String,
    /// Whether the spec hit the fingerprint cache (the returned job
    /// already existed; no new cells were enqueued).
    pub cached: bool,
}

/// `GET /v1/jobs/{id}` response body: live progress assembled from the
/// job's [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatusBody {
    /// [`JOB_STATUS_SCHEMA`].
    pub schema: String,
    /// The job id.
    pub job_id: String,
    /// The spec fingerprint.
    pub fingerprint: String,
    /// `queued` | `running` | `done` | `failed` | `cancelled`.
    pub state: String,
    /// Failure description when `state == "failed"`.
    pub error: Option<String>,
    /// Point-in-time telemetry for this job's registry.
    pub metrics: MetricsSnapshot,
}

/// `GET /v1/jobs/{id}/trace` response body: the job's recorded span
/// timeline, one [`SpanRecord`](hetsched_core::SpanRecord) per completed
/// span. Empty until the job's campaign starts executing (spans are
/// appended as they close, so a running job serves a growing prefix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTraceBody {
    /// [`JOB_TRACE_SCHEMA`].
    pub schema: String,
    /// The job id.
    pub job_id: String,
    /// The spec fingerprint.
    pub fingerprint: String,
    /// Completed spans in close order (parents close after children).
    pub spans: Vec<hetsched_core::SpanRecord>,
}

/// `GET /v1/jobs/{id}/workers` response body: the per-worker view of a
/// distributed campaign, computed purely from the job's manifest — cell
/// records each worker appended plus the replayed lease state machine.
/// A single-process job reports one worker (the daemon's own id);
/// external `hetsched work` processes sharing the job's manifest each
/// get a row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobWorkersBody {
    /// [`JOB_WORKERS_SCHEMA`].
    pub schema: String,
    /// The job id.
    pub job_id: String,
    /// The spec fingerprint.
    pub fingerprint: String,
    /// Per-worker rollups, sorted by worker id.
    pub workers: Vec<hetsched_core::WorkerSummary>,
}

/// `GET /v1/jobs/{id}/report` response body: the finished campaign, in
/// the same byte-stable serialisation the offline path emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReportBody {
    /// [`JOB_REPORT_SCHEMA`].
    pub schema: String,
    /// The job id.
    pub job_id: String,
    /// The spec fingerprint.
    pub fingerprint: String,
    /// Complete per-grid-point reports, canonical order.
    pub reports: Vec<CampaignReport>,
    /// Cells that exhausted their attempts.
    pub failed: Vec<CellRecord>,
    /// Cells skipped by cancellation or deadline.
    pub skipped: Vec<CellId>,
    /// Cells executed by the serving daemon.
    pub executed: u64,
    /// Cells replayed from the manifest (resume / fingerprint cache).
    pub replayed: u64,
}

impl JobReportBody {
    /// Wraps a finished [`CampaignOutcome`] for the wire.
    pub fn from_outcome(job_id: &str, fingerprint: &str, outcome: &CampaignOutcome) -> Self {
        JobReportBody {
            schema: JOB_REPORT_SCHEMA.to_string(),
            job_id: job_id.to_string(),
            fingerprint: fingerprint.to_string(),
            reports: outcome.reports.clone(),
            failed: outcome.failed.clone(),
            skipped: outcome.skipped.clone(),
            executed: outcome.executed as u64,
            replayed: outcome.replayed as u64,
        }
    }
}

/// `POST /v1/streams` request body: open (or resume) a rolling-horizon
/// stream. The stream id keys the per-stream manifest under the state
/// directory, so POSTing the same id + configuration after a daemon
/// restart resumes the stream mid-flight instead of starting over.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRequest {
    /// Must equal [`STREAM_REQUEST_SCHEMA`]; anything else is a 400.
    pub schema: String,
    /// Client-chosen stream key (`[A-Za-z0-9_-]{1,64}`) — also the
    /// manifest filename stem.
    pub stream_id: String,
    /// Data set whose machines serve the stream (1-3).
    pub set: u8,
    /// Re-optimization period in seconds.
    pub horizon: f64,
    /// Stream-wide energy budget in joules (absent = unconstrained).
    pub energy_budget: Option<f64>,
    /// Per-arrival placement rule (`max-utility` | `gupta`) instead of
    /// the evolutionary re-optimizer.
    pub policy: Option<String>,
    /// MOEA family (`nsga2` | `moead` | `spea2`; default nsga2).
    pub algorithm: Option<String>,
    /// Engine population per tick (default 24).
    pub population: Option<usize>,
    /// Engine generations per tick (default 8).
    pub generations: Option<usize>,
    /// Master RNG seed (default 0x5EED).
    pub rng_seed: Option<u64>,
    /// Warm-start each tick from the previous front (default true).
    pub warm_start: Option<bool>,
}

impl StreamRequest {
    /// A minimal engine-backed request with the current schema tag.
    pub fn new(stream_id: impl Into<String>, set: u8, horizon: f64) -> Self {
        StreamRequest {
            schema: STREAM_REQUEST_SCHEMA.to_string(),
            stream_id: stream_id.into(),
            set,
            horizon,
            energy_budget: None,
            policy: None,
            algorithm: None,
            population: None,
            generations: None,
            rng_seed: None,
            warm_start: None,
        }
    }
}

// Most knobs are genuinely optional on the wire, so the serde impls are
// hand-written like [`JobRequest`]'s: absent keys stay absent (never
// `null`), and the derive's missing-field strictness is kept for the
// required trio (schema, stream_id, set, horizon).
impl Serialize for StreamRequest {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = vec![
            ("schema".to_string(), serde::to_value(&self.schema)),
            ("stream_id".to_string(), serde::to_value(&self.stream_id)),
            ("set".to_string(), serde::to_value(&self.set)),
            ("horizon".to_string(), serde::to_value(&self.horizon)),
        ];
        if let Some(v) = self.energy_budget {
            entries.push(("energy_budget".to_string(), serde::to_value(&v)));
        }
        if let Some(v) = &self.policy {
            entries.push(("policy".to_string(), serde::to_value(v)));
        }
        if let Some(v) = &self.algorithm {
            entries.push(("algorithm".to_string(), serde::to_value(v)));
        }
        if let Some(v) = self.population {
            entries.push(("population".to_string(), serde::to_value(&v)));
        }
        if let Some(v) = self.generations {
            entries.push(("generations".to_string(), serde::to_value(&v)));
        }
        if let Some(v) = self.rng_seed {
            entries.push(("rng_seed".to_string(), serde::to_value(&v)));
        }
        if let Some(v) = self.warm_start {
            entries.push(("warm_start".to_string(), serde::to_value(&v)));
        }
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for StreamRequest {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private::{from_field, into_object};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "StreamRequest")?;
        fn optional<T: serde::DeserializeOwned, E: serde::de::Error>(
            entries: &mut Vec<(String, Value)>,
            name: &'static str,
        ) -> Result<Option<T>, E> {
            use serde::__private::from_field;
            if entries.iter().any(|(k, _)| k == name) {
                from_field::<Option<T>, E>(entries, name)
            } else {
                Ok(None)
            }
        }
        let schema: String = from_field(&mut entries, "schema")?;
        let stream_id: String = from_field(&mut entries, "stream_id")?;
        let set: u8 = from_field(&mut entries, "set")?;
        let horizon: f64 = from_field(&mut entries, "horizon")?;
        Ok(StreamRequest {
            schema,
            stream_id,
            set,
            horizon,
            energy_budget: optional(&mut entries, "energy_budget")?,
            policy: optional(&mut entries, "policy")?,
            algorithm: optional(&mut entries, "algorithm")?,
            population: optional(&mut entries, "population")?,
            generations: optional(&mut entries, "generations")?,
            rng_seed: optional(&mut entries, "rng_seed")?,
            warm_start: optional(&mut entries, "warm_start")?,
        })
    }
}

/// `POST /v1/streams` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCreated {
    /// [`STREAM_CREATED_SCHEMA`].
    pub schema: String,
    /// The stream id (echoed back).
    pub stream_id: String,
    /// Re-optimizer fingerprint (`engine:nsga2`, `policy:gupta`, …).
    pub optimizer: String,
    /// Whether the stream already existed — in memory or as an on-disk
    /// manifest replayed back to its interrupted state.
    pub resumed: bool,
    /// Horizon ticks already committed (0 for a fresh stream).
    pub ticks: u64,
    /// Exclusive end of the arrival window fed so far.
    pub fed_until: f64,
}

/// `POST /v1/streams/{id}/tasks` request body: one arrival window. The
/// daemon feeds the tasks, then synchronously runs every horizon the fed
/// window now covers and answers with the post-tick status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamFeedRequest {
    /// Must equal [`STREAM_FEED_SCHEMA`].
    pub schema: String,
    /// Exclusive end of the window these tasks cover; must not retreat.
    pub until: f64,
    /// Arrivals in the window, in arrival order.
    pub tasks: Vec<hetsched_core::Task>,
}

/// `GET /v1/streams/{id}` (and feed) response body: committed-schedule
/// totals as of the last horizon tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatusBody {
    /// [`STREAM_STATUS_SCHEMA`].
    pub schema: String,
    /// The stream id.
    pub stream_id: String,
    /// Re-optimizer fingerprint.
    pub optimizer: String,
    /// Horizon ticks committed so far.
    pub ticks: u64,
    /// Stream wall-clock (seconds; ticks × horizon).
    pub now: f64,
    /// Exclusive end of the arrival window fed so far.
    pub fed_until: f64,
    /// Tasks covered by the last committed schedule.
    pub tasks: u64,
    /// Tasks frozen (already started) after the last tick.
    pub frozen: u64,
    /// Tasks rejected stream-wide to fit the energy budget.
    pub rejected: u64,
    /// Committed total utility.
    pub utility: f64,
    /// Committed total energy in joules.
    pub energy: f64,
}

/// `GET /v1/streams/{id}/timeline` response body: the full committed
/// schedule (per-task placements) plus the per-tick records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamTimelineBody {
    /// [`STREAM_TIMELINE_SCHEMA`].
    pub schema: String,
    /// The stream id.
    pub stream_id: String,
    /// One record per committed horizon tick.
    pub records: Vec<hetsched_core::HorizonRecord>,
    /// The committed schedule: start/finish/machine per task, in task
    /// order.
    pub timeline: Vec<hetsched_core::TaskRecord>,
}

/// Error response body, for every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// [`ERROR_SCHEMA`].
    pub schema: String,
    /// Machine-readable failure family, mirroring
    /// [`hetsched_core::ErrorClass`]: `invalid-input` | `not-found` |
    /// `internal`.
    pub class: String,
    /// Human-readable description.
    pub error: String,
}

impl ErrorBody {
    /// Builds the body for an error class + message.
    pub fn new(class: ErrorClass, error: impl Into<String>) -> Self {
        ErrorBody {
            schema: ERROR_SCHEMA.to_string(),
            class: class_label(class).to_string(),
            error: error.into(),
        }
    }
}

/// The wire label of an [`ErrorClass`].
pub fn class_label(class: ErrorClass) -> &'static str {
    match class {
        ErrorClass::InvalidInput => "invalid-input",
        ErrorClass::NotFound => "not-found",
        ErrorClass::Internal => "internal",
    }
}

/// The HTTP status an [`ErrorClass`] maps to — the single place the
/// unified error taxonomy meets HTTP.
pub fn class_status(class: ErrorClass) -> u16 {
    match class {
        ErrorClass::InvalidInput => 400,
        ErrorClass::NotFound => 404,
        ErrorClass::Internal => 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::ExperimentConfig;

    #[test]
    fn job_request_roundtrips_and_tolerates_missing_timeout() {
        let spec = CampaignSpec::single(&ExperimentConfig::dataset1());
        let req = JobRequest::new(spec.clone());
        let json = serde_json::to_string(&req).unwrap();
        // Absent timeout serialises to an absent key, not `null`.
        assert!(!json.contains("cell_timeout_s"));
        let back: JobRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        let with_timeout = JobRequest {
            cell_timeout_s: Some(1.5),
            ..req.clone()
        };
        let json = serde_json::to_string(&with_timeout).unwrap();
        assert!(json.contains("\"cell_timeout_s\":1.5"));
        let back: JobRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_timeout);
    }

    #[test]
    fn stream_request_roundtrips_with_and_without_optionals() {
        let bare = StreamRequest::new("s1", 1, 30.0);
        let json = serde_json::to_string(&bare).unwrap();
        // Absent knobs serialise to absent keys, not `null`.
        for key in [
            "energy_budget",
            "policy",
            "algorithm",
            "population",
            "generations",
            "rng_seed",
            "warm_start",
        ] {
            assert!(!json.contains(key), "{key} leaked into {json}");
        }
        let back: StreamRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bare);

        let full = StreamRequest {
            energy_budget: Some(2.5e6),
            policy: None,
            algorithm: Some("spea2".into()),
            population: Some(16),
            generations: Some(5),
            rng_seed: Some(42),
            warm_start: Some(false),
            ..bare.clone()
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: StreamRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);

        // Missing required fields stay hard errors.
        assert!(serde_json::from_str::<StreamRequest>(
            "{\"schema\":\"hetsched.stream-request.v1\",\"set\":1,\"horizon\":30.0}"
        )
        .is_err());
    }

    #[test]
    fn class_mapping_is_total() {
        assert_eq!(class_status(ErrorClass::InvalidInput), 400);
        assert_eq!(class_status(ErrorClass::NotFound), 404);
        assert_eq!(class_status(ErrorClass::Internal), 500);
        assert_eq!(class_label(ErrorClass::NotFound), "not-found");
        let body = ErrorBody::new(ErrorClass::InvalidInput, "bad spec");
        assert_eq!(body.schema, ERROR_SCHEMA);
        let json = serde_json::to_string(&body).unwrap();
        let back: ErrorBody = serde_json::from_str(&json).unwrap();
        assert_eq!(back, body);
    }
}
