//! A minimal blocking HTTP/1.1 client over [`TcpStream`] — the
//! curl-equivalent the integration tests and the CI probe binary use
//! against a running daemon. One request per connection, matching the
//! server's `Connection: close` contract.
//!
//! Transient transport failures (connection refused, read timeout) are
//! retried a bounded number of times with jittered exponential backoff,
//! so a probe racing daemon startup or a momentary stall does not fail
//! the whole run. Anything the server actually answered — any HTTP
//! status — is returned as-is, never retried.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket budget for connect/read/write.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Total connection attempts per request (1 initial + 3 retries).
const RETRY_ATTEMPTS: u32 = 4;

/// Base backoff; doubles per retry, scaled by the jitter factor.
const RETRY_BASE: Duration = Duration::from_millis(50);

/// One parsed response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Whether a transport error is worth another attempt: the connection
/// never happened (daemon still binding, listen backlog full) or the
/// socket stalled past its budget. Parse errors and hard transport
/// failures are returned immediately.
fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Backoff before retry `attempt` (1-based): `RETRY_BASE * 2^(attempt-1)`
/// scaled by a deterministic jitter factor in [0.5, 1.5) derived from the
/// pid and attempt number — concurrent probes spread out instead of
/// hammering the daemon in lockstep, and tests stay reproducible.
fn backoff(attempt: u32) -> Duration {
    let mut x = u64::from(std::process::id())
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt));
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64;
    RETRY_BASE.mul_f64(f64::from(1 << (attempt - 1)) * jitter)
}

/// Issues one request against `addr` (`host:port`), retrying transient
/// transport failures (see [`is_transient`]) up to four attempts with
/// jittered exponential backoff.
///
/// # Errors
///
/// Transport failures after the retry budget, or
/// [`io::ErrorKind::InvalidData`] when the response is not parseable
/// HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut attempt = 1;
    loop {
        match request_once(addr, method, path, body) {
            Err(err) if attempt < RETRY_ATTEMPTS && is_transient(&err) => {
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            outcome => return outcome,
        }
    }
}

/// One connection, one request, no retries.
fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let payload = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if body.is_some() {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> io::Result<ClientResponse> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    Ok(ClientResponse {
        status,
        body: body.to_string(),
    })
}

/// `GET` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn delete(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "DELETE", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let resp = parse_response(
            "HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}",
        )
        .unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert!(resp.is_success());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 huh\r\n\r\n").is_err());
    }

    #[test]
    fn transient_errors_are_retryable_hard_errors_are_not() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(is_transient(&io::Error::from(kind)), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::InvalidData,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::BrokenPipe,
        ] {
            assert!(!is_transient(&io::Error::from(kind)), "{kind:?}");
        }
    }

    #[test]
    fn backoff_grows_within_jitter_bounds() {
        for attempt in 1..RETRY_ATTEMPTS {
            let d = backoff(attempt);
            let base = RETRY_BASE.mul_f64(f64::from(1 << (attempt - 1)));
            assert!(d >= base.mul_f64(0.5), "attempt {attempt}: {d:?}");
            assert!(d < base.mul_f64(1.5), "attempt {attempt}: {d:?}");
        }
        // Deterministic within a process.
        assert_eq!(backoff(1), backoff(1));
    }

    #[test]
    fn retries_ride_out_a_daemon_that_binds_late() {
        use std::net::TcpListener;
        // Learn a free port, then leave it unbound so the first
        // attempt(s) get connection-refused.
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");
        let server = std::thread::spawn(move || {
            // Bind after the first attempt has failed; the retry loop's
            // smallest first backoff is 25 ms.
            std::thread::sleep(Duration::from_millis(10));
            let listener = TcpListener::bind(("127.0.0.1", port)).unwrap();
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            let _ = conn.write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nok");
        });
        let resp = get(&addr, "/metrics").unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
    }
}
