//! A minimal blocking HTTP/1.1 client over [`TcpStream`] — the
//! curl-equivalent the integration tests and the CI probe binary use
//! against a running daemon. One request per connection, matching the
//! server's `Connection: close` contract.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket budget for connect/read/write.
const TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Issues one request against `addr` (`host:port`).
///
/// # Errors
///
/// Transport failures, or [`io::ErrorKind::InvalidData`] when the
/// response is not parseable HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let payload = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if body.is_some() {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> io::Result<ClientResponse> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    Ok(ClientResponse {
        status,
        body: body.to_string(),
    })
}

/// `GET` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn delete(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "DELETE", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let resp = parse_response(
            "HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}",
        )
        .unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert!(resp.is_success());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 huh\r\n\r\n").is_err());
    }
}
