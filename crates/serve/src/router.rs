//! Path → route mapping, and nothing else.
//!
//! The router is a pure function from `(method, path)` to a [`Route`] so
//! the URL scheme is testable without sockets and the handler layer
//! ([`crate::handlers`]) never string-matches paths itself.

/// The API surface, one variant per endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/jobs` — submit a campaign.
    CreateJob,
    /// `GET /v1/jobs/{id}` — live job progress.
    JobStatus(String),
    /// `GET /v1/jobs/{id}/report` — the finished campaign report.
    JobReport(String),
    /// `GET /v1/jobs/{id}/trace` — the job's recorded span timeline.
    JobTrace(String),
    /// `GET /v1/jobs/{id}/workers` — per-worker lease/progress view
    /// computed from the job's manifest.
    JobWorkers(String),
    /// `DELETE /v1/jobs/{id}` — cancel a job.
    CancelJob(String),
    /// `GET /metrics` — Prometheus text export across all jobs.
    Metrics,
    /// `POST /v1/streams` — open (or resume) a rolling-horizon stream.
    CreateStream,
    /// `POST /v1/streams/{id}/tasks` — append one arrival window and run
    /// every horizon the fed window covers.
    FeedStream(String),
    /// `GET /v1/streams/{id}` — committed-schedule totals.
    StreamStatus(String),
    /// `GET /v1/streams/{id}/timeline` — the committed schedule.
    StreamTimeline(String),
}

/// Resolves `(method, path)` to a route; `None` is the handler's 404.
/// Query strings are ignored; paths match exactly (no trailing-slash
/// forgiveness — the API is machine-facing).
pub fn route(method: &str, path: &str) -> Option<Route> {
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<&str> = path.strip_prefix('/')?.split('/').collect();
    match (method, segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => Some(Route::CreateJob),
        ("GET", ["v1", "jobs", id]) if !id.is_empty() => Some(Route::JobStatus(id.to_string())),
        ("GET", ["v1", "jobs", id, "report"]) if !id.is_empty() => {
            Some(Route::JobReport(id.to_string()))
        }
        ("GET", ["v1", "jobs", id, "trace"]) if !id.is_empty() => {
            Some(Route::JobTrace(id.to_string()))
        }
        ("GET", ["v1", "jobs", id, "workers"]) if !id.is_empty() => {
            Some(Route::JobWorkers(id.to_string()))
        }
        ("DELETE", ["v1", "jobs", id]) if !id.is_empty() => Some(Route::CancelJob(id.to_string())),
        ("GET", ["metrics"]) => Some(Route::Metrics),
        ("POST", ["v1", "streams"]) => Some(Route::CreateStream),
        ("POST", ["v1", "streams", id, "tasks"]) if !id.is_empty() => {
            Some(Route::FeedStream(id.to_string()))
        }
        ("GET", ["v1", "streams", id]) if !id.is_empty() => {
            Some(Route::StreamStatus(id.to_string()))
        }
        ("GET", ["v1", "streams", id, "timeline"]) if !id.is_empty() => {
            Some(Route::StreamTimeline(id.to_string()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint() {
        assert_eq!(route("POST", "/v1/jobs"), Some(Route::CreateJob));
        assert_eq!(
            route("GET", "/v1/jobs/j001"),
            Some(Route::JobStatus("j001".into()))
        );
        assert_eq!(
            route("GET", "/v1/jobs/j001/report"),
            Some(Route::JobReport("j001".into()))
        );
        assert_eq!(
            route("GET", "/v1/jobs/j001/trace"),
            Some(Route::JobTrace("j001".into()))
        );
        assert_eq!(
            route("GET", "/v1/jobs/j001/workers"),
            Some(Route::JobWorkers("j001".into()))
        );
        assert_eq!(
            route("DELETE", "/v1/jobs/j001"),
            Some(Route::CancelJob("j001".into()))
        );
        assert_eq!(route("GET", "/metrics"), Some(Route::Metrics));
        assert_eq!(route("POST", "/v1/streams"), Some(Route::CreateStream));
        assert_eq!(
            route("POST", "/v1/streams/s1/tasks"),
            Some(Route::FeedStream("s1".into()))
        );
        assert_eq!(
            route("GET", "/v1/streams/s1"),
            Some(Route::StreamStatus("s1".into()))
        );
        assert_eq!(
            route("GET", "/v1/streams/s1/timeline"),
            Some(Route::StreamTimeline("s1".into()))
        );
    }

    #[test]
    fn ignores_query_strings() {
        assert_eq!(route("GET", "/metrics?format=text"), Some(Route::Metrics));
    }

    #[test]
    fn rejects_unknown_paths_and_methods() {
        assert_eq!(route("GET", "/v1/jobs"), None);
        assert_eq!(route("POST", "/v1/jobs/j001"), None);
        assert_eq!(route("GET", "/v1/jobs/"), None);
        assert_eq!(route("GET", "/v1/jobs/j001/reports"), None);
        assert_eq!(route("POST", "/v1/jobs/j001/workers"), None);
        assert_eq!(route("GET", "/v1/jobs//workers"), None);
        assert_eq!(route("PUT", "/metrics"), None);
        assert_eq!(route("GET", "/v1/streams"), None);
        assert_eq!(route("DELETE", "/v1/streams/s1"), None);
        assert_eq!(route("POST", "/v1/streams//tasks"), None);
        assert_eq!(route("GET", "/"), None);
        assert_eq!(route("GET", "metrics"), None);
    }
}
