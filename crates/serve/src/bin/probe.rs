//! `hetsched-probe`: the tiny test client CI uses against a running
//! `hetsched serve` daemon — a curl stand-in for environments without
//! one.
//!
//! ```text
//! hetsched-probe <METHOD> <host:port> <path> [json-body]
//! ```
//!
//! Prints `<status>` on the first line and the response body after it;
//! exits 0 on a 2xx status, 1 otherwise, 2 on usage errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (method, addr, path, body) = match args.as_slice() {
        [method, addr, path] => (method.as_str(), addr.as_str(), path.as_str(), None),
        [method, addr, path, body] => (
            method.as_str(),
            addr.as_str(),
            path.as_str(),
            Some(body.as_str()),
        ),
        _ => {
            eprintln!("usage: hetsched-probe <METHOD> <host:port> <path> [json-body]");
            return ExitCode::from(2);
        }
    };
    match hetsched_serve::client::request(addr, method, path, body) {
        Ok(response) => {
            println!("{}", response.status);
            println!("{}", response.body);
            if response.is_success() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("probe failed: {e}");
            ExitCode::FAILURE
        }
    }
}
