//! Minimal HTTP/1.1 framing: just enough to parse one request from a
//! stream and write one response back, `Connection: close` semantics.
//!
//! This layer knows nothing about routes or the service — it moves bytes.
//! Swapping in a real HTTP stack later means replacing this module and
//! [`crate::server`] while [`crate::handlers`] keeps its
//! request-in/response-out contract.

use serde::Serialize;
use std::io::{self, BufRead, Write};

/// Upper bound on an accepted request body — campaign specs are a few
/// KiB; anything near this size is a client error, not a workload.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request: method, path (query string stripped by the
/// router), and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target as sent (e.g. `/v1/jobs/j001`).
    pub path: String,
    /// Raw body bytes (`Content-Length` framed; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request (request line, headers, `Content-Length`-framed
    /// body) from `reader`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a malformed request line,
    /// header, or an oversized body; any transport error otherwise.
    pub fn read_from(mut reader: impl BufRead) -> io::Result<Request> {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad_request("empty request line"))?
            .to_string();
        let path = parts
            .next()
            .ok_or_else(|| bad_request("request line has no target"))?
            .to_string();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                break;
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_request("unparseable Content-Length"))?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(bad_request("request body too large"));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(Request { method, path, body })
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the body is not UTF-8.
    pub fn body_utf8(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body).map_err(|_| bad_request("request body is not UTF-8"))
    }
}

fn bad_request(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// One response: status code, content type, body. Always written with
/// `Connection: close` — the server handles exactly one request per
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: serialises `body` (infallible with the vendored
    /// serializer for the wire types this crate emits; a serialisation
    /// failure degrades to a 500 with a plain-text body).
    pub fn json(status: u16, body: &impl Serialize) -> Response {
        match serde_json::to_string(body) {
            Ok(text) => Response {
                status,
                content_type: "application/json",
                body: text.into_bytes(),
            },
            Err(e) => Response::text(500, format!("response serialisation failed: {e}")),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }

    /// Writes the response (status line, headers, body) to `writer`.
    ///
    /// # Errors
    ///
    /// Any transport error from `writer`.
    pub fn write_to(&self, mut writer: impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Canonical reason phrase for the status codes this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_line_headers_and_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = Request::read_from(BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_utf8().unwrap(), "abcd");
    }

    #[test]
    fn bodyless_request_has_empty_body() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = Request::read_from(BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::read_from(BufReader::new(&b"\r\n"[..])).is_err());
        assert!(Request::read_from(BufReader::new(&b"GET\r\n\r\n"[..])).is_err());
        let bad_len = b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n";
        assert!(Request::read_from(BufReader::new(&bad_len[..])).is_err());
    }

    #[test]
    fn response_writes_status_line_and_framing() {
        let mut out = Vec::new();
        Response::text(404, "nope").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nnope"));
    }
}
