#![warn(missing_docs)]

//! `hetsched serve`: the campaign machinery as a long-running service.
//!
//! The crate turns the one-shot batch tool into a daemon: a hand-rolled
//! HTTP/1.1 server on [`std::net::TcpListener`] (the workspace is
//! offline/vendored, so no hyper) in front of a [`SchedulerService`]
//! that runs [`hetsched_core::Campaign`]s concurrently on a shared
//! worker pool. The transport, routing, and application layers are
//! deliberately separate modules so a real HTTP stack can replace
//! [`http`]/[`server`] later without touching [`service`]:
//!
//! - [`http`] — request/response framing only;
//! - [`router`] — path → [`router::Route`] mapping only;
//! - [`handlers`] — routes to service calls, errors to statuses;
//! - [`service`] — job registry, worker pool, fingerprint cache;
//! - [`wire`] — the versioned JSON bodies served over HTTP;
//! - [`client`] — a minimal blocking client for tests and CI probes.
//!
//! # Endpoints
//!
//! | Method   | Path                   | Body                                          |
//! |----------|------------------------|-----------------------------------------------|
//! | `POST`   | `/v1/jobs`             | [`wire::JobRequest`] → [`wire::JobCreated`]   |
//! | `GET`    | `/v1/jobs/{id}`        | [`wire::JobStatusBody`] (live progress)       |
//! | `GET`    | `/v1/jobs/{id}/report` | [`wire::JobReportBody`]; 404 + status earlier |
//! | `DELETE` | `/v1/jobs/{id}`        | cancels via `CancelToken`, returns status     |
//! | `GET`    | `/metrics`             | Prometheus text, aggregated across jobs       |
//! | `POST`   | `/v1/streams`          | [`wire::StreamRequest`] → [`wire::StreamCreated`] |
//! | `POST`   | `/v1/streams/{id}/tasks` | [`wire::StreamFeedRequest`] → [`wire::StreamStatusBody`] |
//! | `GET`    | `/v1/streams/{id}`     | [`wire::StreamStatusBody`] (committed totals) |
//! | `GET`    | `/v1/streams/{id}/timeline` | [`wire::StreamTimelineBody`] (full schedule) |
//!
//! Streams are the rolling-horizon online path: `POST /v1/streams` opens
//! (or resumes) a stream keyed by a client-chosen id, each
//! `POST /v1/streams/{id}/tasks` appends one arrival window and
//! synchronously commits every horizon the fed window covers, and the
//! status/timeline routes expose the committed schedule. Every feed and
//! commit is journalled to `stream-<id>.manifest.jsonl` under the state
//! directory, so a restarted daemon replays the manifest and resumes the
//! stream mid-flight, bit-identically (see
//! [`hetsched_core::StreamRunner`]).
//!
//! Completed campaigns stay cached keyed by the spec fingerprint (the
//! same FNV-1a fingerprint the manifest header carries), so a repeated
//! identical `POST /v1/jobs` returns the finished job immediately, and
//! per-job manifests under the state directory make that cache survive
//! daemon restarts through the ordinary resume path.

pub mod client;
pub mod handlers;
pub mod http;
pub mod router;
pub mod server;
pub mod service;
pub mod wire;

pub use server::Server;
pub use service::{SchedulerService, ServeConfig};
