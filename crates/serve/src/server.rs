//! The transport loop: accept connections, frame one request each, hand
//! it to [`crate::handlers::handle`], write the response back.
//!
//! The listener runs non-blocking and polls a [`CancelToken`] between
//! accepts, so shutdown needs no self-pipe or signal plumbing here —
//! whoever owns the token (the CLI's signal watcher, a test) cancels it
//! and [`Server::run`] returns.

use crate::handlers;
use crate::http::{Request, Response};
use crate::service::SchedulerService;
use hetsched_core::{CancelToken, ErrorClass};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket budget — a stalled client cannot wedge a
/// connection thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound, not-yet-running HTTP server.
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks an ephemeral
    /// port, see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind failure from the OS.
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener })
    }

    /// The actually-bound address.
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` is cancelled. Each accepted connection is
    /// handled on its own short-lived thread (one request, one response,
    /// `Connection: close`), so a slow request never blocks the accept
    /// loop or the other endpoints.
    ///
    /// # Errors
    ///
    /// A non-transient accept failure; individual connection errors are
    /// logged and dropped.
    pub fn run(&self, service: &SchedulerService, shutdown: &CancelToken) -> io::Result<()> {
        while !shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = service.clone();
                    thread::spawn(move || handle_connection(&service, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

fn handle_connection(service: &SchedulerService, stream: TcpStream) {
    // The listener's non-blocking flag is inherited; connections are
    // handled with ordinary blocking reads under a timeout.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(SOCKET_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(SOCKET_TIMEOUT)).is_err()
    {
        return;
    }
    let response = match Request::read_from(BufReader::new(&stream)) {
        Ok(request) => {
            // Each request gets its own trace root; these spans land in
            // the mux's default writer (jobs run asynchronously under
            // their own roots, so request spans measure only dispatch).
            let mut request_span =
                tracing::Span::root(tracing::Level::DEBUG, module_path!(), "request");
            if request_span.is_enabled() {
                request_span.record("method", request.method.clone());
                request_span.record("path", request.path.clone());
            }
            let _in_request = request_span.enter();
            handlers::handle(service, &request)
        }
        Err(e) => Response::json(
            400,
            &crate::wire::ErrorBody::new(ErrorClass::InvalidInput, format!("bad request: {e}")),
        ),
    };
    if let Err(e) = response.write_to(&stream) {
        tracing::debug!("dropping response: {e}");
    }
    let _ = stream.shutdown(Shutdown::Both);
}
