//! Wire-schema regression tests: every body served over HTTP round-trips
//! through serde, and its serialisation is frozen as a golden fixture
//! under `tests/golden/` — schema drift (renamed fields, reordered keys,
//! a silent `v1` → `v2`) fails here before any client sees it.
//!
//! Regenerate after an intentional schema change with
//! `GOLDEN_REGEN=1 cargo test -p hetsched-serve --test wire`.

use hetsched_core::{
    Algorithm, AnalysisReport, CampaignReport, CampaignSpec, DatasetId, ErrorClass,
    ExperimentConfig, MetricsSnapshot, ParetoFront, PopulationRun, SeedKind,
};
use hetsched_serve::wire::{
    ErrorBody, JobCreated, JobReportBody, JobRequest, JobStatusBody, JobWorkersBody, ERROR_SCHEMA,
    JOB_CREATED_SCHEMA, JOB_REPORT_SCHEMA, JOB_STATUS_SCHEMA, JOB_WORKERS_SCHEMA,
};
use serde::{DeserializeOwned, Serialize};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Round-trips `value` through JSON and pins its serialisation to the
/// committed fixture, byte for byte.
fn assert_frozen<T>(value: &T, fixture: &str)
where
    T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("wire type serialises");
    let back: T = serde_json::from_str(&json).expect("wire type parses back");
    assert_eq!(&back, value, "round-trip must be lossless");

    let path = golden_dir().join(fixture);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, format!("{json}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("fixture {fixture} missing — run with GOLDEN_REGEN=1"));
    assert_eq!(
        json,
        expected.trim_end(),
        "wire schema for {fixture} drifted — bump the schema version \
         and regenerate the fixture if this is intentional"
    );
}

/// A deterministic config (no wall-clock, fixed seeds) shared by the
/// fixtures.
fn fixture_config() -> ExperimentConfig {
    ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(7)
        .parallel(false)
        .build()
        .unwrap()
}

fn fixture_metrics() -> MetricsSnapshot {
    MetricsSnapshot {
        elapsed_s: 1.5,
        cells_total: 4,
        cells_replayed: 1,
        cells_started: 3,
        cells_finished: 2,
        cells_retried: 1,
        cells_panicked: 0,
        cells_timed_out: 0,
        cells_poisoned: 0,
        cells_failed: 0,
        cells_skipped: 0,
        generations: 12,
        evaluations: 96,
        leases_acquired: 3,
        leases_renewed: 5,
        leases_expired: 1,
        leases_stolen: 1,
        leases_fenced: 1,
        workers: 2,
        sim_evaluations: 0,
        faults_injected: 0,
        phase_mating_s: 0.25,
        phase_evaluation_s: 0.5,
        phase_sorting_s: 0.125,
        ewma_cell_s: 0.75,
        cell_duration_sum_s: 1.5,
        cell_duration_count: 2,
        cell_duration_buckets: vec![0, 1, 1, 0, 0, 0, 0, 0, 0],
    }
}

#[test]
fn job_request_is_frozen() {
    let request = JobRequest {
        cell_timeout_s: Some(2.5),
        ..JobRequest::new(CampaignSpec::single(&fixture_config()))
    };
    assert_frozen(&request, "job_request.json");
}

#[test]
fn job_created_is_frozen() {
    let created = JobCreated {
        schema: JOB_CREATED_SCHEMA.to_string(),
        job_id: "j001".to_string(),
        fingerprint: "00c0ffee00c0ffee".to_string(),
        state: "queued".to_string(),
        cached: false,
    };
    assert_frozen(&created, "job_created.json");
}

#[test]
fn job_status_is_frozen() {
    let status = JobStatusBody {
        schema: JOB_STATUS_SCHEMA.to_string(),
        job_id: "j001".to_string(),
        fingerprint: "00c0ffee00c0ffee".to_string(),
        state: "running".to_string(),
        error: None,
        metrics: fixture_metrics(),
    };
    assert_frozen(&status, "job_status.json");
}

#[test]
fn job_report_is_frozen() {
    let report = JobReportBody {
        schema: JOB_REPORT_SCHEMA.to_string(),
        job_id: "j001".to_string(),
        fingerprint: "00c0ffee00c0ffee".to_string(),
        reports: vec![CampaignReport {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            replicate: 0,
            report: AnalysisReport {
                runs: vec![PopulationRun {
                    seed: SeedKind::Random,
                    fronts: vec![(2, ParetoFront::from_points([(1.0, 2.0), (2.0, 1.0)]))],
                }],
                snapshots: vec![2],
            },
        }],
        failed: vec![],
        skipped: vec![],
        executed: 2,
        replayed: 0,
    };
    assert_frozen(&report, "job_report.json");
}

#[test]
fn job_workers_is_frozen() {
    let body = JobWorkersBody {
        schema: JOB_WORKERS_SCHEMA.to_string(),
        job_id: "j001".to_string(),
        fingerprint: "00c0ffee00c0ffee".to_string(),
        workers: vec![
            hetsched_core::WorkerSummary {
                worker: "alpha:100".to_string(),
                cells: 3,
                stolen: 1,
                fenced: 0,
                wall_clock_s: 2.5,
            },
            hetsched_core::WorkerSummary {
                worker: "beta:200".to_string(),
                cells: 1,
                stolen: 0,
                fenced: 1,
                wall_clock_s: 0.75,
            },
        ],
    };
    assert_frozen(&body, "job_workers.json");
}

#[test]
fn error_body_is_frozen() {
    let error = ErrorBody::new(
        ErrorClass::InvalidInput,
        "invalid config: tasks must be > 0",
    );
    assert_eq!(error.schema, ERROR_SCHEMA);
    assert_frozen(&error, "error_body.json");
}

#[test]
fn schema_tags_are_versioned() {
    // The drift-detection contract: every schema tag names the payload
    // and carries an explicit version suffix.
    for tag in [
        hetsched_serve::wire::JOB_REQUEST_SCHEMA,
        JOB_CREATED_SCHEMA,
        JOB_STATUS_SCHEMA,
        JOB_REPORT_SCHEMA,
        JOB_WORKERS_SCHEMA,
        ERROR_SCHEMA,
    ] {
        assert!(tag.starts_with("hetsched."), "{tag}");
        let (_, version) = tag.rsplit_once(".v").expect(tag);
        assert!(version.parse::<u32>().is_ok(), "{tag}");
    }
    // The status body embeds the metrics snapshot, which gained the
    // lease counters — v2 on the wire.
    assert_eq!(JOB_STATUS_SCHEMA, "hetsched.job-status.v2");
}
