//! The range-based ETC generation method of Ali et al. (*Tamkang J. Sci.
//! Eng.* 3(3), 2000) — the paper's reference \[15\] for "representing task and
//! machine heterogeneities". Where §III-D2 grows a data set *from real
//! measurements*, this classic method synthesises one *from scratch* given
//! a heterogeneity class, and is the standard baseline the literature
//! (including the paper's related work) evaluates against.
//!
//! `ETC(τ, μ) = τ_b(τ) × ρ(τ, μ)` with `τ_b ~ U(1, R_task)` a per-task
//! baseline and `ρ ~ U(1, R_machine)` a per-entry machine factor. High/low
//! values of the two ranges give the four canonical classes (hi-hi, hi-lo,
//! lo-hi, lo-lo).

use hetsched_data::{TaskTypeId, TypeMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Task/machine heterogeneity class (Ali et al. Table 1 conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityClass {
    /// High task heterogeneity, high machine heterogeneity.
    HiHi,
    /// High task, low machine.
    HiLo,
    /// Low task, high machine.
    LoHi,
    /// Low task, low machine.
    LoLo,
}

impl HeterogeneityClass {
    /// `(R_task, R_machine)` upper bounds for the uniform ranges; the
    /// customary values from the consistent-ETC literature.
    pub fn ranges(self) -> (f64, f64) {
        match self {
            HeterogeneityClass::HiHi => (3000.0, 1000.0),
            HeterogeneityClass::HiLo => (3000.0, 10.0),
            HeterogeneityClass::LoHi => (100.0, 1000.0),
            HeterogeneityClass::LoLo => (100.0, 10.0),
        }
    }

    /// All four classes.
    pub const ALL: [HeterogeneityClass; 4] = [
        HeterogeneityClass::HiHi,
        HeterogeneityClass::HiLo,
        HeterogeneityClass::LoHi,
        HeterogeneityClass::LoLo,
    ];
}

/// Generates an inconsistent range-based ETC matrix of the given class.
pub fn range_based_etc<R: Rng + ?Sized>(
    task_types: usize,
    machine_types: usize,
    class: HeterogeneityClass,
    rng: &mut R,
) -> TypeMatrix {
    let (r_task, r_machine) = class.ranges();
    let mut m = TypeMatrix::filled(task_types, machine_types, 0.0);
    for t in 0..task_types {
        let baseline = rng.gen_range(1.0..r_task);
        for c in 0..machine_types {
            let factor = rng.gen_range(1.0..r_machine);
            m.set(
                TaskTypeId(t as u16),
                hetsched_data::MachineTypeId(c as u16),
                baseline * factor,
            );
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratios::ratio_matrix;
    use crate::rowavg::row_averages;
    use hetsched_stats::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrices_are_positive_and_shaped() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in HeterogeneityClass::ALL {
            let m = range_based_etc(20, 8, class, &mut rng);
            assert_eq!(m.task_types(), 20);
            assert_eq!(m.machine_types(), 8);
            assert!(m.validate_positive().is_ok());
        }
    }

    #[test]
    fn hihi_has_more_task_spread_than_lolo() {
        let mut rng = StdRng::seed_from_u64(2);
        let hi = range_based_etc(200, 8, HeterogeneityClass::HiHi, &mut rng);
        let lo = range_based_etc(200, 8, HeterogeneityClass::LoLo, &mut rng);
        let cv = |m: &TypeMatrix| {
            let avgs = row_averages(m).unwrap();
            Moments::from_sample(&avgs)
                .unwrap()
                .coefficient_of_variation()
        };
        assert!(
            cv(&hi) > cv(&lo),
            "hi-hi task CV {} should exceed lo-lo {}",
            cv(&hi),
            cv(&lo)
        );
    }

    #[test]
    fn machine_heterogeneity_shows_in_ratio_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let hi = range_based_etc(200, 8, HeterogeneityClass::LoHi, &mut rng);
        let lo = range_based_etc(200, 8, HeterogeneityClass::LoLo, &mut rng);
        // Within-row spread across machines: std of ratios pooled.
        let pooled_ratio_sd = |m: &TypeMatrix| {
            let r = ratio_matrix(m).unwrap();
            let vals: Vec<f64> = (0..m.task_types())
                .flat_map(|t| r.row(TaskTypeId(t as u16)).to_vec())
                .collect();
            Moments::from_sample(&vals).unwrap().std_dev()
        };
        assert!(pooled_ratio_sd(&hi) > pooled_ratio_sd(&lo));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = range_based_etc(
            10,
            5,
            HeterogeneityClass::HiHi,
            &mut StdRng::seed_from_u64(7),
        );
        let b = range_based_etc(
            10,
            5,
            HeterogeneityClass::HiHi,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    /// The §III-D2 pipeline can fit and regrow a range-based matrix too —
    /// the two generation methods compose.
    #[test]
    fn gram_charlier_pipeline_accepts_range_based_base() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = range_based_etc(10, 6, HeterogeneityClass::HiHi, &mut rng);
        let model = crate::rowavg::RowAverageModel::fit(&base).unwrap();
        let ratios = crate::ratios::RatioModel::fit(&base).unwrap();
        for _ in 0..50 {
            let avg = model.sample(&mut rng);
            let row = ratios.sample_row(avg, &mut rng);
            assert_eq!(row.len(), 6);
            assert!(row.iter().all(|v| *v > 0.0 && v.is_finite()));
        }
    }
}
