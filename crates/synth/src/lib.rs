#![warn(missing_docs)]

//! Heterogeneity-preserving synthetic data generation (§III-D2).
//!
//! Starting from the real 5×9 ETC/EPC matrices, the paper derives larger
//! data sets in three steps, each reproduced by a module here:
//!
//! 1. [`rowavg`] — compute the *row average* (mean across machines) of each
//!    real task type, fit a Gram-Charlier density to the mean / variance /
//!    skewness / kurtosis of those averages, and sample row averages for
//!    new task types.
//! 2. [`ratios`] — for each machine type, compute the *task type execution
//!    time ratio* (entry ÷ row average) of the real task types, fit a
//!    per-machine Gram-Charlier density to those ratios, and sample ratios
//!    for the new task types; `ETC(new τ, μ) = ratio × row-average(new τ)`.
//! 3. [`special`] — create special-purpose machine types that execute a
//!    small subset of task types ~10× faster than the across-machine
//!    average (EPC is *not* divided by ten).
//!
//! [`builder::DatasetBuilder`] wires the steps into complete [`HcSystem`]s;
//! [`verify`] quantifies how well a generated set preserves the original
//! heterogeneity measures.

pub mod builder;
pub mod measures;
pub mod ranges;
pub mod ratios;
pub mod rowavg;
pub mod special;
pub mod verify;

pub use builder::{DatasetBuilder, SpecialSpec};
pub use measures::{matrix_heterogeneity, MatrixHeterogeneity};
pub use ranges::{range_based_etc, HeterogeneityClass};
pub use verify::HeterogeneityReport;

use hetsched_data::DataError;
use hetsched_data::HcSystem;
use hetsched_stats::StatsError;
use std::fmt;

// Re-exported for doc-links above.
#[allow(unused_imports)]
use hetsched_data as _;
#[allow(unused_imports)]
pub(crate) type _SystemAlias = HcSystem;

/// Errors produced by the synthetic-data pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// A statistics step failed (degenerate sample, bad moments, ...).
    Stats(StatsError),
    /// A matrix/system construction step failed.
    Data(DataError),
    /// The generation request itself is inconsistent.
    InvalidRequest(&'static str),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Stats(e) => write!(f, "statistics error: {e}"),
            SynthError::Data(e) => write!(f, "data error: {e}"),
            SynthError::InvalidRequest(what) => write!(f, "invalid request: {what}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Stats(e) => Some(e),
            SynthError::Data(e) => Some(e),
            SynthError::InvalidRequest(_) => None,
        }
    }
}

impl From<StatsError> for SynthError {
    fn from(e: StatsError) -> Self {
        SynthError::Stats(e)
    }
}

impl From<DataError> for SynthError {
    fn from(e: DataError) -> Self {
        SynthError::Data(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SynthError>;
