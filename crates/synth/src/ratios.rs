//! Step 2 of §III-D2: per-machine *task type execution time ratios*.
//!
//! The ratio of a (task type, machine type) pair is its matrix entry divided
//! by the task type's row average — values below 1 mark machines faster
//! than average for that task, above 1 slower. For each machine type the
//! ratios of the *real* task types are fitted with a Gram-Charlier density;
//! sampling it yields ratios for new task types on that machine, preserving
//! both the machine's relative performance and the task heterogeneity
//! across it.

use crate::rowavg::row_averages;
use crate::{Result, SynthError};
use hetsched_data::{MachineTypeId, TaskTypeId, TypeMatrix};
use hetsched_stats::{GramCharlier, Moments, TabulatedSampler};
use rand::Rng;

/// Per-machine ratio models fitted to a source matrix.
#[derive(Debug, Clone)]
pub struct RatioModel {
    /// One target-moments record per machine type (for verification).
    pub targets: Vec<Moments>,
    samplers: Vec<TabulatedSampler>,
}

/// Computes the ratio matrix entry ÷ row-average for all finite entries;
/// infinite entries (incompatible pairs) are preserved.
///
/// # Errors
///
/// [`SynthError::InvalidRequest`] when a row has no finite entry.
pub fn ratio_matrix(matrix: &TypeMatrix) -> Result<TypeMatrix> {
    let avgs = row_averages(matrix)?;
    let mut out = TypeMatrix::filled(matrix.task_types(), matrix.machine_types(), 0.0);
    for (t, &avg) in avgs.iter().enumerate() {
        let tid = TaskTypeId(t as u16);
        for m in 0..matrix.machine_types() {
            let mid = MachineTypeId(m as u16);
            let v = matrix.get(tid, mid);
            out.set(
                tid,
                mid,
                if v.is_finite() {
                    v / avg
                } else {
                    f64::INFINITY
                },
            );
        }
    }
    Ok(out)
}

impl RatioModel {
    /// Fits one Gram-Charlier ratio density per machine type.
    ///
    /// # Errors
    ///
    /// Propagates moment/sampler failures; a machine column needs at least
    /// two finite ratios with non-zero variance.
    pub fn fit(matrix: &TypeMatrix) -> Result<Self> {
        let ratios = ratio_matrix(matrix)?;
        let mut targets = Vec::with_capacity(matrix.machine_types());
        let mut samplers = Vec::with_capacity(matrix.machine_types());
        for m in 0..matrix.machine_types() {
            let col: Vec<f64> = ratios
                .column(MachineTypeId(m as u16))
                .filter(|v| v.is_finite())
                .collect();
            let target = Moments::from_sample(&col)?;
            let gc = GramCharlier::new(&target)?;
            samplers.push(gc.positive_sampler()?);
            targets.push(target);
        }
        Ok(RatioModel { targets, samplers })
    }

    /// Number of machine types modelled.
    pub fn machine_types(&self) -> usize {
        self.samplers.len()
    }

    /// Samples an execution-time ratio for a new task type on machine `m`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, m: MachineTypeId, rng: &mut R) -> f64 {
        self.samplers[m.index()].sample(rng)
    }

    /// Samples a full new-task-type row given its row average: one ratio per
    /// machine type, multiplied by the row average.
    pub fn sample_row<R: Rng + ?Sized>(&self, row_average: f64, rng: &mut R) -> Vec<f64> {
        (0..self.samplers.len())
            .map(|m| self.sample(MachineTypeId(m as u16), rng) * row_average)
            .collect()
    }
}

/// Convenience: returns `(RowAverage ratios were taken from, RatioModel)`
/// fitted from the same matrix, guaranteeing consistency.
pub fn fit_ratio_model(matrix: &TypeMatrix) -> Result<RatioModel> {
    if matrix.task_types() < 2 {
        return Err(SynthError::InvalidRequest(
            "need at least two task types to fit ratios",
        ));
    }
    RatioModel::fit(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_etc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_ratios() {
        // Task takes 8 min on A, 12 min on B, row average 10 → ratios .8 / 1.2.
        let m = TypeMatrix::from_rows(1, 2, vec![8.0, 12.0]).unwrap();
        let r = ratio_matrix(&m).unwrap();
        assert!((r.get(TaskTypeId(0), MachineTypeId(0)) - 0.8).abs() < 1e-12);
        assert!((r.get(TaskTypeId(0), MachineTypeId(1)) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn ratios_average_to_one_per_row() {
        let r = ratio_matrix(&real_etc().0).unwrap();
        for t in 0..5 {
            let avg = r.row_average(TaskTypeId(t as u16)).unwrap();
            assert!((avg - 1.0).abs() < 1e-12, "row {t} ratio average {avg}");
        }
    }

    #[test]
    fn fast_machines_have_ratios_below_one() {
        let r = ratio_matrix(&real_etc().0).unwrap();
        // Machine 6 (3960X @ 4.2 GHz) is fastest on every task.
        for v in r.column(MachineTypeId(6)) {
            assert!(v < 1.0);
        }
        // Machine 0 (A8-3870K) is slowest on every task.
        for v in r.column(MachineTypeId(0)) {
            assert!(v > 1.0);
        }
    }

    #[test]
    fn infinite_entries_stay_infinite() {
        let m = TypeMatrix::from_rows(2, 2, vec![2.0, f64::INFINITY, 3.0, 6.0]).unwrap();
        let r = ratio_matrix(&m).unwrap();
        assert!(r.get(TaskTypeId(0), MachineTypeId(1)).is_infinite());
        // Row 0 average is 2.0 (only finite entry), so ratio is 1.0.
        assert!((r.get(TaskTypeId(0), MachineTypeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_ratios_preserve_machine_ordering_in_expectation() {
        let model = fit_ratio_model(&real_etc().0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let mean_ratio = |m: u16, rng: &mut StdRng| -> f64 {
            (0..n)
                .map(|_| model.sample(MachineTypeId(m), rng))
                .sum::<f64>()
                / n as f64
        };
        let fast = mean_ratio(6, &mut rng);
        let slow = mean_ratio(0, &mut rng);
        assert!(
            fast < slow,
            "fast machine mean ratio {fast} should stay below slow machine {slow}"
        );
        assert!(fast < 1.0 && slow > 1.0);
    }

    #[test]
    fn sample_row_scales_by_row_average() {
        let model = fit_ratio_model(&real_etc().0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let row = model.sample_row(100.0, &mut rng);
        assert_eq!(row.len(), 9);
        for v in row {
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn single_row_matrix_is_rejected() {
        let m = TypeMatrix::from_rows(1, 2, vec![1.0, 2.0]).unwrap();
        assert!(fit_ratio_model(&m).is_err());
    }
}
