//! Matrix-level task/machine heterogeneity quantification, after
//! Al-Qawasmeh et al., *"Statistical measures for quantifying task and
//! machine heterogeneities"* (The Journal of Supercomputing 57(1)) — the
//! paper's reference \[21\] and the vocabulary behind "hi-hi / lo-lo"
//! classifications.
//!
//! * **Task heterogeneity** — how differently the *task types* behave:
//!   dispersion of the row means (average execution time per task type).
//! * **Machine heterogeneity** — how differently the *machines* behave:
//!   the average, over task types, of the dispersion along each row.
//!
//! Both are reported as coefficients of variation (scale-free), so matrices
//! in seconds and matrices in watts are directly comparable.

use crate::rowavg::row_averages;
use crate::Result;
use hetsched_data::{TaskTypeId, TypeMatrix};
use hetsched_stats::Moments;

/// The two matrix-level heterogeneity measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixHeterogeneity {
    /// CoV of per-task-type mean execution times.
    pub task: f64,
    /// Mean over task types of the per-row CoV across machines.
    pub machine: f64,
}

/// Computes both measures for a matrix (ignoring `+∞` incompatible pairs).
///
/// # Errors
///
/// Propagates moment failures (needs ≥ 2 rows, ≥ 2 finite entries per row,
/// non-degenerate values).
pub fn matrix_heterogeneity(matrix: &TypeMatrix) -> Result<MatrixHeterogeneity> {
    let avgs = row_averages(matrix)?;
    let task = Moments::from_sample(&avgs)?.coefficient_of_variation();
    let mut machine_sum = 0.0;
    let mut rows = 0usize;
    for t in 0..matrix.task_types() {
        let row: Vec<f64> = matrix
            .row(TaskTypeId(t as u16))
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        let m = Moments::from_sample(&row)?;
        machine_sum += m.coefficient_of_variation();
        rows += 1;
    }
    Ok(MatrixHeterogeneity {
        task,
        machine: machine_sum / rows as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::{range_based_etc, HeterogeneityClass};
    use hetsched_data::real_etc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn real_data_measures_are_finite_positive() {
        let h = matrix_heterogeneity(&real_etc().0).unwrap();
        assert!(h.task > 0.0 && h.task.is_finite());
        assert!(h.machine > 0.0 && h.machine.is_finite());
    }

    #[test]
    fn machine_axis_ordering_is_recovered() {
        // The machine-heterogeneity measure must separate high-R_machine
        // classes (CoV of U(1,1000) ≈ 0.575) from low ones (U(1,10) ≈
        // 0.47). The *task* axis is scale-free under CoV — U(1,100) and
        // U(1,3000) have nearly identical CoV — so class separation there
        // shows up in absolute dispersion, checked below.
        let mut rng = StdRng::seed_from_u64(31);
        let mut h =
            |class| matrix_heterogeneity(&range_based_etc(120, 10, class, &mut rng)).unwrap();
        let hihi = h(HeterogeneityClass::HiHi);
        let hilo = h(HeterogeneityClass::HiLo);
        let lohi = h(HeterogeneityClass::LoHi);
        let lolo = h(HeterogeneityClass::LoLo);
        assert!(
            hihi.machine > hilo.machine,
            "machine axis: hi {} vs lo {}",
            hihi.machine,
            hilo.machine
        );
        assert!(lohi.machine > lolo.machine);
    }

    #[test]
    fn task_axis_separates_in_absolute_dispersion() {
        // High task-range classes produce row averages with far larger
        // standard deviation than low ones (the CoV itself saturates).
        let mut rng = StdRng::seed_from_u64(33);
        let mut sd_of = |class| {
            let m = range_based_etc(120, 10, class, &mut rng);
            let avgs = row_averages(&m).unwrap();
            Moments::from_sample(&avgs).unwrap().std_dev()
        };
        let hi = sd_of(HeterogeneityClass::HiLo);
        let lo = sd_of(HeterogeneityClass::LoLo);
        assert!(hi > 5.0 * lo, "task dispersion: hi {hi} vs lo {lo}");
    }

    #[test]
    fn synthetic_extension_tracks_real_machine_heterogeneity() {
        // The §III-D2 pipeline claims to preserve heterogeneity: the grown
        // matrix's machine CoV must track the real one's.
        let mut rng = StdRng::seed_from_u64(32);
        let sys = crate::builder::DatasetBuilder::from_real()
            .new_task_types(300)
            .build(&mut rng)
            .unwrap();
        let real = matrix_heterogeneity(&real_etc().0).unwrap();
        let grown = matrix_heterogeneity(&sys.etc().0).unwrap();
        let rel = ((grown.machine - real.machine) / real.machine).abs();
        assert!(rel < 0.35, "machine heterogeneity drifted by {rel}");
    }

    #[test]
    fn degenerate_matrices_are_rejected() {
        let constant = TypeMatrix::filled(3, 3, 5.0);
        assert!(matrix_heterogeneity(&constant).is_err());
        let single_row = TypeMatrix::filled(1, 3, 5.0);
        assert!(matrix_heterogeneity(&single_row).is_err());
    }
}
