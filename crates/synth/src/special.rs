//! Step 3 of §III-D2: special-purpose machine types.
//!
//! "Special-purpose machine types are modeled to perform around 10× faster
//! than the general-purpose machine types for a small number of task types
//! (two to three for each special purpose machine type). ... The average
//! execution time for each task type is divided by ten and is then used as
//! the ETC value for the special-purpose machine type. When calculating EPC
//! values, the average power consumption across the machines is not divided
//! by ten."

use crate::rowavg::row_averages;
use crate::{Result, SynthError};
use hetsched_data::{TaskTypeId, TypeMatrix};

/// The paper's special-purpose speed-up factor.
pub const SPECIAL_SPEEDUP: f64 = 10.0;

/// Builds the ETC column for one special-purpose machine type: row-average
/// ÷ 10 for the accelerated task types, `+∞` (incompatible) for the rest.
///
/// # Errors
///
/// [`SynthError::InvalidRequest`] when `accelerated` is empty or references
/// an out-of-range task type.
pub fn special_etc_column(etc: &TypeMatrix, accelerated: &[TaskTypeId]) -> Result<Vec<f64>> {
    if accelerated.is_empty() {
        return Err(SynthError::InvalidRequest(
            "special machine accelerates no task types",
        ));
    }
    if accelerated.iter().any(|t| t.index() >= etc.task_types()) {
        return Err(SynthError::InvalidRequest(
            "accelerated task type out of range",
        ));
    }
    let avgs = row_averages(etc)?;
    let mut col = vec![f64::INFINITY; etc.task_types()];
    for &t in accelerated {
        col[t.index()] = avgs[t.index()] / SPECIAL_SPEEDUP;
    }
    Ok(col)
}

/// Builds the EPC column for one special-purpose machine type: row-average
/// power for the accelerated task types (NOT divided by ten). Entries for
/// task types the machine cannot execute are filled with the same average
/// power — they are never read because the corresponding ETC is `+∞`, but
/// keeping them finite-positive lets the whole matrix pass validation.
///
/// # Errors
///
/// Same conditions as [`special_etc_column`].
pub fn special_epc_column(epc: &TypeMatrix, accelerated: &[TaskTypeId]) -> Result<Vec<f64>> {
    if accelerated.is_empty() {
        return Err(SynthError::InvalidRequest(
            "special machine accelerates no task types",
        ));
    }
    if accelerated.iter().any(|t| t.index() >= epc.task_types()) {
        return Err(SynthError::InvalidRequest(
            "accelerated task type out of range",
        ));
    }
    let avgs = row_averages(epc)?;
    Ok(avgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn etc() -> TypeMatrix {
        TypeMatrix::from_rows(3, 2, vec![10.0, 30.0, 40.0, 60.0, 5.0, 15.0]).unwrap()
    }

    #[test]
    fn etc_column_divides_row_average_by_ten() {
        let col = special_etc_column(&etc(), &[TaskTypeId(0), TaskTypeId(2)]).unwrap();
        assert!((col[0] - 2.0).abs() < 1e-12); // rowavg 20 / 10
        assert!(col[1].is_infinite());
        assert!((col[2] - 1.0).abs() < 1e-12); // rowavg 10 / 10
    }

    #[test]
    fn epc_column_keeps_row_average_power() {
        let epc = TypeMatrix::from_rows(2, 2, vec![100.0, 140.0, 80.0, 120.0]).unwrap();
        let col = special_epc_column(&epc, &[TaskTypeId(0)]).unwrap();
        assert!((col[0] - 120.0).abs() < 1e-12);
        assert!((col[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn special_is_faster_than_every_general_machine() {
        let m = etc();
        let col = special_etc_column(&m, &[TaskTypeId(1)]).unwrap();
        for mt in 0..2 {
            let general = m.get(TaskTypeId(1), hetsched_data::MachineTypeId(mt));
            assert!(col[1] < general, "special {} vs general {general}", col[1]);
        }
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        assert!(special_etc_column(&etc(), &[]).is_err());
        assert!(special_etc_column(&etc(), &[TaskTypeId(9)]).is_err());
        let epc = TypeMatrix::filled(2, 2, 100.0);
        assert!(special_epc_column(&epc, &[]).is_err());
        assert!(special_epc_column(&epc, &[TaskTypeId(5)]).is_err());
    }
}
