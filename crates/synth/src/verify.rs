//! Heterogeneity-preservation verification.
//!
//! The paper claims its method "allows us to create larger data sets that
//! exhibit similar heterogeneity characteristics when compared to the real
//! data"; this module quantifies the claim by comparing the mvsk
//! heterogeneity measures of the source and generated data.

use crate::ratios::ratio_matrix;
use crate::rowavg::row_averages;
use crate::Result;
use hetsched_data::{MachineTypeId, TypeMatrix};
use hetsched_stats::Moments;

/// Side-by-side heterogeneity measures of a source matrix and a generated
/// matrix (row-average distribution plus per-machine ratio distributions).
#[derive(Debug, Clone)]
pub struct HeterogeneityReport {
    /// Row-average moments of the source data.
    pub source_row_avg: Moments,
    /// Row-average moments of the generated data.
    pub generated_row_avg: Moments,
    /// Per-machine ratio moments of the source data.
    pub source_ratios: Vec<Moments>,
    /// Per-machine ratio moments of the generated data (same column order).
    pub generated_ratios: Vec<Moments>,
}

impl HeterogeneityReport {
    /// Compares `source` against `generated` over the shared machine-type
    /// columns (callers slice away special-purpose columns beforehand).
    ///
    /// # Errors
    ///
    /// Propagates moment failures (degenerate rows/columns).
    pub fn compare(source: &TypeMatrix, generated: &TypeMatrix) -> Result<Self> {
        let src_avgs = row_averages(source)?;
        let gen_avgs = row_averages(generated)?;
        let src_ratio = ratio_matrix(source)?;
        let gen_ratio = ratio_matrix(generated)?;
        let cols = source.machine_types().min(generated.machine_types());
        let mut source_ratios = Vec::with_capacity(cols);
        let mut generated_ratios = Vec::with_capacity(cols);
        for m in 0..cols {
            let m = MachineTypeId(m as u16);
            let sc: Vec<f64> = src_ratio.column(m).filter(|v| v.is_finite()).collect();
            let gc: Vec<f64> = gen_ratio.column(m).filter(|v| v.is_finite()).collect();
            source_ratios.push(Moments::from_sample(&sc)?);
            generated_ratios.push(Moments::from_sample(&gc)?);
        }
        Ok(HeterogeneityReport {
            source_row_avg: Moments::from_sample(&src_avgs)?,
            generated_row_avg: Moments::from_sample(&gen_avgs)?,
            source_ratios,
            generated_ratios,
        })
    }

    /// Worst discrepancy between the source and generated row-average
    /// measures (see [`Moments::max_discrepancy`]).
    pub fn row_avg_discrepancy(&self) -> f64 {
        self.source_row_avg.max_discrepancy(&self.generated_row_avg)
    }

    /// Worst per-machine ratio-moments discrepancy.
    pub fn worst_ratio_discrepancy(&self) -> f64 {
        self.source_ratios
            .iter()
            .zip(&self.generated_ratios)
            .map(|(s, g)| s.max_discrepancy(g))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;
    use hetsched_data::{real_etc, TaskTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Extract the general-machine columns (all of them here) of a freshly
    /// generated large data set and compare against the real data.
    #[test]
    fn large_generated_set_preserves_heterogeneity() {
        let mut rng = StdRng::seed_from_u64(21);
        // Generate many task types so sample moments are stable; no special
        // machines so columns align with the real data.
        let sys = DatasetBuilder::from_real()
            .new_task_types(500)
            .build(&mut rng)
            .unwrap();
        // Compare only the synthetic rows (5..505) to isolate the sampler.
        let gen = {
            let mut m = TypeMatrix::filled(500, 9, 0.0);
            for t in 0..500u16 {
                for c in 0..9u16 {
                    m.set(
                        TaskTypeId(t),
                        MachineTypeId(c),
                        sys.etc().time(TaskTypeId(t + 5), MachineTypeId(c)),
                    );
                }
            }
            m
        };
        let report = HeterogeneityReport::compare(&real_etc().0, &gen).unwrap();
        // Mean / sd of row averages within ~15 %; sampled shape measures are
        // noisier (clamped density + 5-point fit) but must stay in the same
        // regime.
        // The shape measures are fitted from only five real row averages and
        // the clamped density biases kurtosis, so the worst-measure bound is
        // loose; the location/scale assertions below are the tight ones.
        let d = report.row_avg_discrepancy();
        assert!(d < 1.5, "row-average discrepancy {d}");
        let rel_mean = ((report.generated_row_avg.mean - report.source_row_avg.mean)
            / report.source_row_avg.mean)
            .abs();
        assert!(rel_mean < 0.15, "row-average mean off by {rel_mean}");
        let w = report.worst_ratio_discrepancy();
        assert!(w < 2.0, "worst ratio discrepancy {w}");
        // Tighter per-machine location check: mean ratio of each machine
        // (its relative speed) must be preserved closely.
        for (s, g) in report.source_ratios.iter().zip(&report.generated_ratios) {
            let rel = ((g.mean - s.mean) / s.mean).abs();
            assert!(rel < 0.15, "machine mean ratio off by {rel}");
        }
    }

    #[test]
    fn identical_matrices_have_zero_discrepancy() {
        let m = real_etc().0;
        let report = HeterogeneityReport::compare(&m, &m.clone()).unwrap();
        assert_eq!(report.row_avg_discrepancy(), 0.0);
        assert_eq!(report.worst_ratio_discrepancy(), 0.0);
    }

    #[test]
    fn report_covers_every_machine_column() {
        let m = real_etc().0;
        let report = HeterogeneityReport::compare(&m, &m.clone()).unwrap();
        assert_eq!(report.source_ratios.len(), 9);
        assert_eq!(report.generated_ratios.len(), 9);
    }
}
