//! Step 1 of §III-D2: sample *row averages* for new task types.
//!
//! "We calculate the following heterogeneity measures: mean, variation,
//! skewness, and kurtosis for the collection of row average task execution
//! times. With the mvsk values we use the Gram-Charlier expansion to create
//! a probability density function that produces samples of row average task
//! execution times."

use crate::{Result, SynthError};
use hetsched_data::{TaskTypeId, TypeMatrix};
use hetsched_stats::{GramCharlier, Moments, TabulatedSampler};
use rand::Rng;

/// Fitted sampler of row averages, retaining the target moments so callers
/// can verify preservation.
#[derive(Debug, Clone)]
pub struct RowAverageModel {
    /// Moments of the original row averages.
    pub target: Moments,
    sampler: TabulatedSampler,
}

/// Extracts the finite row averages of a matrix.
///
/// # Errors
///
/// [`SynthError::InvalidRequest`] when any row has no finite entry.
pub fn row_averages(matrix: &TypeMatrix) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(matrix.task_types());
    for t in 0..matrix.task_types() {
        let avg = matrix
            .row_average(TaskTypeId(t as u16))
            .ok_or(SynthError::InvalidRequest("row with no finite entries"))?;
        out.push(avg);
    }
    Ok(out)
}

impl RowAverageModel {
    /// Fits the Gram-Charlier row-average model to a matrix.
    ///
    /// # Errors
    ///
    /// Propagates moment/sampler failures (fewer than two rows, identical
    /// row averages, degenerate clamped density).
    pub fn fit(matrix: &TypeMatrix) -> Result<Self> {
        let avgs = row_averages(matrix)?;
        let target = Moments::from_sample(&avgs)?;
        let gc = GramCharlier::new(&target)?;
        let sampler = gc.positive_sampler()?;
        Ok(RowAverageModel { target, sampler })
    }

    /// Samples a row average for one new task type (always > 0).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sampler.sample(rng)
    }

    /// Samples `n` new row averages.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        self.sampler.sample_n(rng, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_etc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn real_etc_row_averages() {
        let avgs = row_averages(&real_etc().0).unwrap();
        assert_eq!(avgs.len(), 5);
        // Hand-check one: C-Ray row mean.
        let expect = (95.0 + 45.0 + 88.0 + 62.0 + 55.0 + 28.0 + 25.0 + 40.0 + 36.0) / 9.0;
        assert!((avgs[0] - expect).abs() < 1e-9);
    }

    #[test]
    fn fitted_model_reproduces_target_mean() {
        let model = RowAverageModel::fit(&real_etc().0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sample = model.sample_n(&mut rng, 100_000);
        let got = Moments::from_sample(&sample).unwrap();
        // Clamping the GC density perturbs moments slightly; mean and sd
        // should still land within a few percent of the target.
        let rel_mean = ((got.mean - model.target.mean) / model.target.mean).abs();
        assert!(rel_mean < 0.10, "mean off by {rel_mean}");
        let rel_sd = ((got.std_dev() - model.target.std_dev()) / model.target.std_dev()).abs();
        assert!(rel_sd < 0.25, "sd off by {rel_sd}");
    }

    #[test]
    fn samples_are_positive() {
        let model = RowAverageModel::fit(&real_etc().0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(model.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn all_infinite_row_is_rejected() {
        let m = TypeMatrix::from_rows(1, 2, vec![f64::INFINITY, f64::INFINITY]).unwrap();
        assert!(matches!(
            row_averages(&m),
            Err(SynthError::InvalidRequest(_))
        ));
    }

    #[test]
    fn identical_rows_are_rejected() {
        let m = TypeMatrix::from_rows(2, 2, vec![3.0, 3.0, 3.0, 3.0]).unwrap();
        assert!(RowAverageModel::fit(&m).is_err());
    }
}
