//! Assembles complete synthetic [`HcSystem`]s (data sets 2 and 3 of §V-A):
//! the real 5×9 data extended to 30 task types, plus four special-purpose
//! machine types, over the Table III inventory of 30 machines.

use crate::ratios::RatioModel;
use crate::rowavg::RowAverageModel;
use crate::special::{special_epc_column, special_etc_column};
use crate::{Result, SynthError};
use hetsched_data::inventory::{dataset2_inventory, dataset2_machine_type_names};
use hetsched_data::{
    real_epc, real_etc, Epc, Etc, HcSystem, MachineInventory, TaskTypeId, TypeMatrix,
    REAL_MACHINE_NAMES, REAL_TASK_NAMES,
};
use rand::Rng;

/// Specification of one special-purpose machine type.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecialSpec {
    /// Task types (indices into the *final* task-type list) this machine
    /// executes ~10× faster; all other task types are incompatible.
    pub accelerated: Vec<TaskTypeId>,
}

impl SpecialSpec {
    /// Draws a spec accelerating `count` distinct task types chosen
    /// uniformly from `total_task_types`.
    pub fn random<R: Rng + ?Sized>(count: usize, total_task_types: usize, rng: &mut R) -> Self {
        debug_assert!(count <= total_task_types);
        let mut chosen = Vec::with_capacity(count);
        while chosen.len() < count {
            let t = TaskTypeId(rng.gen_range(0..total_task_types) as u16);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        chosen.sort();
        SpecialSpec {
            accelerated: chosen,
        }
    }
}

/// Builder for heterogeneity-preserving synthetic data sets.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    base_etc: Etc,
    base_epc: Epc,
    base_task_names: Vec<String>,
    base_machine_names: Vec<String>,
    new_task_types: usize,
    specials: Vec<SpecialSpec>,
    /// Machines per *general* machine type (defaults to one each).
    general_counts: Vec<u32>,
}

impl DatasetBuilder {
    /// Starts from the real 5×9 benchmark data.
    pub fn from_real() -> Self {
        DatasetBuilder {
            base_etc: real_etc(),
            base_epc: real_epc(),
            base_task_names: REAL_TASK_NAMES.iter().map(|s| s.to_string()).collect(),
            base_machine_names: REAL_MACHINE_NAMES.iter().map(|s| s.to_string()).collect(),
            new_task_types: 0,
            specials: Vec::new(),
            general_counts: vec![1; 9],
        }
    }

    /// Starts from arbitrary base matrices.
    ///
    /// # Errors
    ///
    /// [`SynthError::InvalidRequest`] on name/shape mismatches.
    pub fn from_base(
        etc: Etc,
        epc: Epc,
        task_names: Vec<String>,
        machine_names: Vec<String>,
    ) -> Result<Self> {
        if task_names.len() != etc.0.task_types() || machine_names.len() != etc.0.machine_types() {
            return Err(SynthError::InvalidRequest(
                "name count does not match matrix shape",
            ));
        }
        let general = etc.0.machine_types();
        Ok(DatasetBuilder {
            base_etc: etc,
            base_epc: epc,
            base_task_names: task_names,
            base_machine_names: machine_names,
            new_task_types: 0,
            specials: Vec::new(),
            general_counts: vec![1; general],
        })
    }

    /// Number of *additional* synthetic task types to create.
    pub fn new_task_types(mut self, n: usize) -> Self {
        self.new_task_types = n;
        self
    }

    /// Adds a special-purpose machine type.
    pub fn special(mut self, spec: SpecialSpec) -> Self {
        self.specials.push(spec);
        self
    }

    /// Sets machines-per-general-type counts (must match the base machine
    /// type count; checked at [`DatasetBuilder::build`]).
    pub fn general_counts(mut self, counts: Vec<u32>) -> Self {
        self.general_counts = counts;
        self
    }

    /// Total task types of the system being built.
    pub fn total_task_types(&self) -> usize {
        self.base_etc.0.task_types() + self.new_task_types
    }

    /// Builds the system: fits the Gram-Charlier models, samples the new
    /// task-type rows, prepends the special-purpose columns, and validates
    /// the result.
    ///
    /// # Errors
    ///
    /// Statistics failures (degenerate base data), invalid special specs,
    /// or system-validation failures all propagate.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<HcSystem> {
        if self.general_counts.len() != self.base_etc.0.machine_types() {
            return Err(SynthError::InvalidRequest("general_counts shape mismatch"));
        }

        // Steps 1 + 2: extend the task-type rows of both matrices.
        let mut etc = self.base_etc.0.clone();
        let mut epc = self.base_epc.0.clone();
        if self.new_task_types > 0 {
            let etc_rowavg = RowAverageModel::fit(&etc)?;
            let etc_ratios = RatioModel::fit(&etc)?;
            let epc_rowavg = RowAverageModel::fit(&epc)?;
            let epc_ratios = RatioModel::fit(&epc)?;
            for _ in 0..self.new_task_types {
                let avg_t = etc_rowavg.sample(rng);
                etc.push_row(&etc_ratios.sample_row(avg_t, rng))?;
                let avg_p = epc_rowavg.sample(rng);
                epc.push_row(&epc_ratios.sample_row(avg_p, rng))?;
            }
        }

        // Step 3: special-purpose columns, *prepended* so the machine-type
        // ordering matches `dataset2_inventory` (specials A–D first).
        let mut spec_etc_cols = Vec::with_capacity(self.specials.len());
        let mut spec_epc_cols = Vec::with_capacity(self.specials.len());
        for spec in &self.specials {
            spec_etc_cols.push(special_etc_column(&etc, &spec.accelerated)?);
            spec_epc_cols.push(special_epc_column(&epc, &spec.accelerated)?);
        }
        let task_types = etc.task_types();
        let machine_types = self.specials.len() + etc.machine_types();
        let assemble = |specials: &[Vec<f64>], general: &TypeMatrix| -> Result<TypeMatrix> {
            let mut data = Vec::with_capacity(task_types * machine_types);
            for t in 0..task_types {
                for col in specials {
                    data.push(col[t]);
                }
                data.extend_from_slice(general.row(TaskTypeId(t as u16)));
            }
            Ok(TypeMatrix::from_rows(task_types, machine_types, data)?)
        };
        let etc = Etc(assemble(&spec_etc_cols, &etc)?);
        let epc = Epc(assemble(&spec_epc_cols, &epc)?);

        // Inventory: one machine per special type, then the general counts.
        let mut counts = vec![1u32; self.specials.len()];
        counts.extend_from_slice(&self.general_counts);
        let inventory = MachineInventory::from_counts(counts)?;

        // Names.
        let mut task_names = self.base_task_names.clone();
        for i in 0..self.new_task_types {
            task_names.push(format!("Synthetic task {}", i + 1));
        }
        let mut machine_names: Vec<String> = (0..self.specials.len())
            .map(|i| format!("Special-purpose machine {}", (b'A' + i as u8) as char))
            .collect();
        machine_names.extend(self.base_machine_names.iter().cloned());

        Ok(HcSystem::new(
            etc,
            epc,
            inventory,
            task_names,
            machine_names,
        )?)
    }
}

/// The data set 2/3 system of §V-A: 25 synthetic task types on top of the
/// five real ones (30 total), four special-purpose machine types each
/// accelerating 2–3 task types, and the Table III inventory (30 machines
/// over 13 machine types).
///
/// # Errors
///
/// Propagates any pipeline failure (none occur with the shipped real data).
pub fn dataset2_system<R: Rng + ?Sized>(rng: &mut R) -> Result<HcSystem> {
    let total_types = 30;
    let mut builder = DatasetBuilder::from_real()
        .new_task_types(25)
        // Table III general-purpose machine counts.
        .general_counts(vec![2, 3, 3, 3, 2, 4, 2, 5, 2]);
    for i in 0..4 {
        let count = 2 + (i % 2); // alternate 2 / 3 accelerated task types
        builder = builder.special(SpecialSpec::random(count, total_types, rng));
    }
    let system = builder.build(rng)?;
    debug_assert_eq!(system.machine_count(), 30);
    debug_assert_eq!(system.machine_type_count(), 13);
    debug_assert_eq!(system.task_type_count(), 30);
    // The builder's column ordering must agree with the canonical Table III
    // inventory and its names.
    debug_assert_eq!(system.inventory(), &dataset2_inventory());
    debug_assert_eq!(
        (0..13u16)
            .map(|m| system
                .machine_type_name(hetsched_data::MachineTypeId(m))
                .to_string())
            .collect::<Vec<_>>(),
        dataset2_machine_type_names()
    );
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::{MachineId, MachineTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset2_shape_matches_paper() {
        let mut rng = StdRng::seed_from_u64(2);
        let sys = dataset2_system(&mut rng).unwrap();
        assert_eq!(sys.task_type_count(), 30);
        assert_eq!(sys.machine_type_count(), 13);
        assert_eq!(sys.machine_count(), 30);
    }

    #[test]
    fn real_data_is_embedded_unchanged() {
        let mut rng = StdRng::seed_from_u64(3);
        let sys = dataset2_system(&mut rng).unwrap();
        let real = real_etc();
        // Real machine types occupy columns 4..13; real task types rows 0..5.
        for t in 0..5u16 {
            for m in 0..9u16 {
                assert_eq!(
                    sys.etc().time(TaskTypeId(t), MachineTypeId(m + 4)),
                    real.time(TaskTypeId(t), MachineTypeId(m)),
                );
            }
        }
    }

    #[test]
    fn specials_accelerate_two_or_three_types_ten_x() {
        let mut rng = StdRng::seed_from_u64(4);
        let sys = dataset2_system(&mut rng).unwrap();
        for mt in 0..4u16 {
            let mt = MachineTypeId(mt);
            let mut compatible = 0;
            for t in 0..30u16 {
                let t = TaskTypeId(t);
                let v = sys.etc().time(t, mt);
                if v.is_finite() {
                    compatible += 1;
                    // ~10x faster than the general-machine row average.
                    let general_avg: f64 = (4..13u16)
                        .map(|g| sys.etc().time(t, MachineTypeId(g)))
                        .sum::<f64>()
                        / 9.0;
                    assert!(
                        (v - general_avg / 10.0).abs() / (general_avg / 10.0) < 1e-9,
                        "special ETC {v} vs rowavg/10 {}",
                        general_avg / 10.0
                    );
                }
            }
            assert!(
                (2..=3).contains(&compatible),
                "special {mt} executes {compatible} types"
            );
        }
    }

    #[test]
    fn every_task_type_remains_executable() {
        let mut rng = StdRng::seed_from_u64(5);
        let sys = dataset2_system(&mut rng).unwrap();
        for t in 0..30u16 {
            assert!(!sys.feasible_machines(TaskTypeId(t)).is_empty());
        }
    }

    #[test]
    fn special_machines_exist_as_single_instances() {
        let mut rng = StdRng::seed_from_u64(6);
        let sys = dataset2_system(&mut rng).unwrap();
        // First four machines are the specials A-D (one each).
        for i in 0..4u32 {
            assert_eq!(sys.machine_type(MachineId(i)), MachineTypeId(i as u16));
        }
        assert_eq!(
            sys.machine_type_name(MachineTypeId(0)),
            "Special-purpose machine A"
        );
        assert_eq!(
            sys.machine_type_name(MachineTypeId(3)),
            "Special-purpose machine D"
        );
        assert_eq!(sys.machine_type_name(MachineTypeId(4)), "AMD A8-3870K");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = dataset2_system(&mut StdRng::seed_from_u64(7)).unwrap();
        let b = dataset2_system(&mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn synthetic_rows_are_positive_finite_on_general_machines() {
        let mut rng = StdRng::seed_from_u64(8);
        let sys = dataset2_system(&mut rng).unwrap();
        for t in 5..30u16 {
            for m in 4..13u16 {
                let v = sys.etc().time(TaskTypeId(t), MachineTypeId(m));
                assert!(v.is_finite() && v > 0.0);
                let p = sys.epc().power(TaskTypeId(t), MachineTypeId(m));
                assert!(p.is_finite() && p > 0.0);
            }
        }
    }

    #[test]
    fn random_special_spec_has_distinct_sorted_types() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = SpecialSpec::random(3, 10, &mut rng);
            assert_eq!(s.accelerated.len(), 3);
            for w in s.accelerated.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn from_base_rejects_name_mismatch() {
        let etc = real_etc();
        let epc = real_epc();
        assert!(DatasetBuilder::from_base(etc, epc, vec!["x".into()], vec!["y".into()]).is_err());
    }

    #[test]
    fn builder_rejects_wrong_general_counts() {
        let mut rng = StdRng::seed_from_u64(10);
        let b = DatasetBuilder::from_real().general_counts(vec![1, 2]);
        assert!(b.build(&mut rng).is_err());
    }
}
