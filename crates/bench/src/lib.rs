//! Shared fixtures for the benchmark harness.
//!
//! The benches come in three groups:
//!
//! * `benches/figures.rs` — one benchmark per paper table/figure, each
//!   regenerating the corresponding data (at a reduced iteration scale; the
//!   measured quantity is the generation cost of the experiment pipeline,
//!   and the bench body also sanity-checks the shape criteria recorded in
//!   EXPERIMENTS.md).
//! * `benches/engine.rs` — micro-benchmarks of the hot paths: fitness
//!   evaluation, fast nondominated sort, crowding distance, one NSGA-II
//!   generation, Gram-Charlier sampling.
//! * `benches/ablations.rs` — design-choice ablations from DESIGN.md:
//!   seeded vs random populations, parallel vs serial evaluation, mutation
//!   rates, Gram-Charlier vs plain-normal sampling.

use hetsched_data::{real_system, HcSystem};
use hetsched_workload::{Trace, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic data-set-1-style fixture with `tasks` tasks.
pub fn ds1_fixture(tasks: usize) -> (HcSystem, Trace) {
    let system = real_system();
    let trace = TraceGenerator::new(tasks, 900.0, system.task_type_count())
        .generate(&mut StdRng::seed_from_u64(0xBE7C))
        .expect("fixture parameters are valid");
    (system, trace)
}

/// A deterministic data-set-2-style fixture (synthetic 30×13 system).
pub fn ds2_fixture(tasks: usize, duration: f64) -> (HcSystem, Trace) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let system = hetsched_synth::builder::dataset2_system(&mut rng).expect("synthesis succeeds");
    let trace = TraceGenerator::new(tasks, duration, system.task_type_count())
        .generate(&mut rng)
        .expect("fixture parameters are valid");
    (system, trace)
}
