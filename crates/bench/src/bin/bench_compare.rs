//! Folds `BENCH_EXPORT` JSONL dumps into dated `BENCH_<date>.json`
//! trajectory files and gates CI on regressions against a committed
//! baseline.
//!
//! Two subcommands:
//!
//! * `collect <export.jsonl> <out.json> [--date YYYY-MM-DD]` — folds the
//!   JSON-lines file the vendored criterion shim appends (one object per
//!   measured benchmark) into a single snapshot document:
//!
//!   ```json
//!   {"schema": 1, "date": "2026-08-08",
//!    "benches": {"delta_eval/real_9x5/full": {"median_ns": 16890, ...}}}
//!   ```
//!
//!   Later lines for the same benchmark name win, so re-running a bench
//!   into the same export file self-corrects.
//!
//! * `compare <baseline.json> <current.json> [--threshold 1.5]
//!   [--gate PREFIX]` — prints the median ratio (current/baseline) for
//!   every benchmark present in both snapshots and exits non-zero when any
//!   benchmark whose name starts with `PREFIX` (default: every benchmark)
//!   regressed by more than the threshold. Benchmarks present on only one
//!   side are reported but never fail the gate, so adding or retiring a
//!   bench does not break CI.

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::{Number, Value};

const USAGE: &str = "usage:
  bench_compare collect <export.jsonl> <out.json> [--date YYYY-MM-DD]
  bench_compare compare <baseline.json> <current.json> [--threshold 1.5] [--gate PREFIX]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("collect") => collect(&args[1..]),
        Some("compare") => compare(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

/// One benchmark's numbers as exported by the criterion shim.
#[derive(Debug, Clone, Copy)]
struct BenchStats {
    median_ns: u64,
    mean_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iterations: u64,
}

fn collect(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut date = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--date" {
            date = Some(
                it.next()
                    .ok_or_else(|| "--date requires a value".to_string())?
                    .clone(),
            );
        } else {
            positional.push(arg.clone());
        }
    }
    let [input, output] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let date = match date {
        Some(d) => {
            validate_date(&d)?;
            d
        }
        None => today_utc(),
    };

    let raw = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let mut benches: BTreeMap<String, BenchStats> = BTreeMap::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{input}:{}: invalid JSON: {e}", lineno + 1))?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{input}:{}: missing \"name\"", lineno + 1))?
            .to_string();
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{input}:{}: missing \"{key}\"", lineno + 1))
        };
        benches.insert(
            name,
            BenchStats {
                median_ns: field("median_ns")?,
                mean_ns: field("mean_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
                iterations: field("iterations")?,
            },
        );
    }
    if benches.is_empty() {
        return Err(format!("{input}: no benchmark lines found"));
    }

    let uint = |v: u64| Value::Num(Number::U(v));
    let bench_map: Vec<(String, Value)> = benches
        .iter()
        .map(|(name, s)| {
            (
                name.clone(),
                Value::Object(vec![
                    ("median_ns".to_string(), uint(s.median_ns)),
                    ("mean_ns".to_string(), uint(s.mean_ns)),
                    ("min_ns".to_string(), uint(s.min_ns)),
                    ("max_ns".to_string(), uint(s.max_ns)),
                    ("iterations".to_string(), uint(s.iterations)),
                ]),
            )
        })
        .collect();
    let doc = Value::Object(vec![
        ("schema".to_string(), uint(1)),
        ("date".to_string(), Value::Str(date.clone())),
        ("benches".to_string(), Value::Object(bench_map)),
    ]);
    let mut rendered = serde_json::to_string_pretty(&doc).expect("static document serialises");
    rendered.push('\n');
    std::fs::write(output, rendered).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("{output}: {} benches ({date})", benches.len());
    Ok(ExitCode::SUCCESS)
}

fn compare(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut threshold = 1.5_f64;
    let mut gate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or_else(|| "--threshold requires a value".to_string())?
                    .parse()
                    .map_err(|e| format!("invalid --threshold: {e}"))?;
                if !(threshold.is_finite() && threshold > 0.0) {
                    return Err("--threshold must be a positive number".to_string());
                }
            }
            "--gate" => {
                gate = Some(
                    it.next()
                        .ok_or_else(|| "--gate requires a value".to_string())?
                        .clone(),
                );
            }
            _ => positional.push(arg.clone()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };

    let baseline = load_snapshot(baseline_path)?;
    let current = load_snapshot(current_path)?;

    let mut failures = Vec::new();
    for (name, base_ns) in &baseline {
        let Some(cur_ns) = current.get(name) else {
            println!("{name:<50} only in baseline (skipped)");
            continue;
        };
        let ratio = *cur_ns as f64 / (*base_ns).max(1) as f64;
        let gated = gate.as_deref().is_none_or(|p| name.starts_with(p));
        let verdict = if !gated {
            "ungated"
        } else if ratio > threshold {
            failures.push((name.clone(), ratio));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{name:<50} {:>10} ns -> {:>10} ns  x{ratio:.2}  {verdict}",
            base_ns, cur_ns
        );
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            println!("{name:<50} new (no baseline, skipped)");
        }
    }

    if failures.is_empty() {
        println!(
            "bench gate passed (threshold x{threshold:.2}, gate {})",
            gate.as_deref().unwrap_or("<all>")
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for (name, ratio) in &failures {
            eprintln!("regression: {name} is x{ratio:.2} over baseline (> x{threshold:.2})");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Reads a `BENCH_<date>.json` snapshot into name -> median_ns.
fn load_snapshot(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    if doc.get("schema").and_then(Value::as_u64) != Some(1) {
        return Err(format!(
            "{path}: unsupported or missing \"schema\" (want 1)"
        ));
    }
    let benches = doc
        .get("benches")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: missing \"benches\" object"))?;
    let mut out = BTreeMap::new();
    for (name, stats) in benches {
        let median = stats
            .get("median_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: bench {name} missing \"median_ns\""))?;
        out.insert(name.clone(), median);
    }
    if out.is_empty() {
        return Err(format!("{path}: snapshot has no benches"));
    }
    Ok(out)
}

fn validate_date(date: &str) -> Result<(), String> {
    let bytes = date.as_bytes();
    let ok = bytes.len() == 10
        && bytes[4] == b'-'
        && bytes[7] == b'-'
        && date
            .bytes()
            .enumerate()
            .all(|(i, b)| matches!(i, 4 | 7) || b.is_ascii_digit());
    if ok {
        Ok(())
    } else {
        Err(format!("--date must be YYYY-MM-DD, got {date:?}"))
    }
}

/// Today's UTC civil date, from the Unix epoch via the days-to-civil
/// algorithm (proleptic Gregorian; valid far beyond any plausible bench
/// date). Avoids pulling a chrono-style dependency into the workspace.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("system clock is after 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_conversion_matches_known_days() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_722), (2023, 12, 31));
        // 2026-08-08 is 20_673 days after the epoch.
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn date_validation() {
        assert!(validate_date("2026-08-08").is_ok());
        assert!(validate_date("2026-8-8").is_err());
        assert!(validate_date("not-a-date").is_err());
    }
}
