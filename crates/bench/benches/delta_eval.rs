//! Incremental (delta) evaluation vs full re-evaluation on mutation-heavy
//! workloads — the benchmark behind README § Performance.
//!
//! Models the engines' hot loop at population 100: each step picks one
//! individual, applies a two-gene mutation (the allocation problem's
//! mutation operator touches at most two tasks), and needs the mutant's
//! objectives. The `full` arm re-runs the reference evaluator on the
//! mutated genome (sort + full schedule walk); the `delta` arm asks the
//! individual's persistent [`DeltaEval`] schedule cache to apply just the
//! two moves. Both arms consume the *same* pre-generated move stream, so
//! they score identical work.
//!
//! The `batched` arm evaluates one whole generation per iteration — 100
//! two-move mutant offspring in a single [`BatchEvaluator::evaluate_jobs`]
//! call, exactly how the engines now feed the evaluator — so its per-iter
//! time covers 100 evaluations (divide by 100 to compare per-evaluation
//! cost with the other arms).
//!
//! Run: `cargo bench -p hetsched-bench --bench delta_eval`
//! Smoke: `cargo bench -p hetsched-bench -- --test`

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_data::{real_system, HcSystem, MachineId, MachineInventory};
use hetsched_sim::{Allocation, BatchEvaluator, BatchJob, DeltaEval, Evaluator, TaskMove};
use hetsched_workload::{Trace, TraceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POPULATION: usize = 100;
const TASKS: usize = 400;

fn random_genome(rng: &mut StdRng, system: &HcSystem, tasks: usize) -> Allocation {
    Allocation {
        machine: (0..tasks)
            .map(|_| MachineId(rng.gen_range(0..system.machine_count() as u32)))
            .collect(),
        order: (0..tasks).map(|_| rng.gen_range(0..10_000u32)).collect(),
    }
}

/// Pre-generated mutation stream: (individual, two task moves), mirroring
/// the allocation problem's mutation operator (reassign one task, swap
/// order keys with another).
fn move_stream(
    rng: &mut StdRng,
    system: &HcSystem,
    tasks: usize,
    len: usize,
) -> Vec<(usize, [TaskMove; 2])> {
    (0..len)
        .map(|_| {
            let individual = rng.gen_range(0..POPULATION);
            let moves = [
                TaskMove {
                    task: rng.gen_range(0..tasks as u32),
                    machine: MachineId(rng.gen_range(0..system.machine_count() as u32)),
                    order: rng.gen_range(0..10_000u32),
                },
                TaskMove {
                    task: rng.gen_range(0..tasks as u32),
                    machine: MachineId(rng.gen_range(0..system.machine_count() as u32)),
                    order: rng.gen_range(0..10_000u32),
                },
            ];
            (individual, moves)
        })
        .collect()
}

fn apply(genome: &mut Allocation, moves: &[TaskMove]) {
    for mv in moves {
        genome.machine[mv.task as usize] = mv.machine;
        genome.order[mv.task as usize] = mv.order;
    }
}

fn bench_system(c: &mut Criterion, label: &str, sys: &HcSystem, trace: &Trace) {
    let mut rng = StdRng::seed_from_u64(33);
    let genomes: Vec<Allocation> = (0..POPULATION)
        .map(|_| random_genome(&mut rng, sys, trace.len()))
        .collect();
    let stream = move_stream(&mut rng, sys, trace.len(), 4096);

    let mut group = c.benchmark_group(format!("delta_eval/{label}"));
    group.bench_function("full", |b| {
        let mut population = genomes.clone();
        let mut ev = Evaluator::new(sys, trace);
        let mut k = 0usize;
        b.iter(|| {
            let (i, moves) = &stream[k % stream.len()];
            k += 1;
            apply(&mut population[*i], moves);
            ev.evaluate(&population[*i])
        });
    });
    group.bench_function("delta", |b| {
        let mut population: Vec<DeltaEval> = genomes
            .iter()
            .map(|g| DeltaEval::new(sys, trace, g))
            .collect();
        let mut k = 0usize;
        b.iter(|| {
            let (i, moves) = &stream[k % stream.len()];
            k += 1;
            population[*i].apply_moves(moves)
        });
    });
    group.bench_function("batched", |b| {
        // One generation per iteration: POPULATION two-move offspring
        // evaluated in a single call, then committed as the next bases so
        // the worker pools stay warm, as in a real engine run.
        let mut population = genomes.clone();
        let mut batch = BatchEvaluator::new(sys, trace);
        let mut k = 0usize;
        b.iter(|| {
            let start = k;
            k += POPULATION;
            let children: Vec<(usize, Allocation, [TaskMove; 2])> = (0..POPULATION)
                .map(|j| {
                    let (i, moves) = &stream[(start + j) % stream.len()];
                    let mut child = population[*i].clone();
                    apply(&mut child, moves);
                    (*i, child, *moves)
                })
                .collect();
            let jobs: Vec<BatchJob<'_>> = children
                .iter()
                .map(|(_base, child, _moves)| {
                    #[cfg(feature = "delta-eval")]
                    {
                        BatchJob::Delta {
                            base: &population[*_base],
                            child,
                            moves: _moves,
                        }
                    }
                    #[cfg(not(feature = "delta-eval"))]
                    {
                        BatchJob::Full(child)
                    }
                })
                .collect();
            let outcomes = batch.evaluate_jobs(&jobs, true);
            drop(jobs);
            for (i, child, _) in children {
                population[i] = child;
            }
            outcomes
        });
    });
    group.finish();
}

fn bench_delta_eval(c: &mut Criterion) {
    let real = real_system();
    let synthetic = real
        .with_inventory(MachineInventory::from_counts(vec![6, 6, 6, 6, 6, 5, 5, 5, 5]).unwrap())
        .unwrap();
    for (label, sys) in [("real-9x5", &real), ("synthetic-50", &synthetic)] {
        let trace = TraceGenerator::new(TASKS, 600.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        bench_system(c, label, sys, &trace);
    }
}

criterion_group!(benches, bench_delta_eval);
criterion_main!(benches);
