//! Campaign orchestration overhead: the same 8-cell workload (4 replicates
//! × 2 seed kinds on data set 1) run bare through
//! `Framework::run_replicated` and through the `Campaign` orchestrator
//! (grid expansion, per-cell isolation via `catch_unwind`, rayon
//! dispatch, outcome assembly; no manifest). The orchestrator's target is
//! <2% overhead at this size — the evolution itself should dwarf the
//! bookkeeping. A once-per-process report prints the measured ratio.
//!
//! A third case runs the campaign with a full `TelemetryObserver`
//! (registry, no heartbeat sink): the default `NullCampaignObserver`
//! must stay within noise of the bare campaign, and the instrumented
//! run shows what the per-event atomics and per-generation stats cost.
//!
//! A `tracing_disabled` case pins the span-instrumentation contract:
//! every span site (campaign, cell, attempt, generation, engine phases,
//! evaluator batches) is compiled in, but with no span sink installed
//! each site must collapse to one relaxed atomic load — the case
//! asserts the sink really is absent and must stay within the same <2%
//! envelope of `campaign_8_cells` (gated against `BENCH_<date>.json`
//! by CI's bench-smoke job).
//!
//! With `--features chaos`, a further case runs the same campaign with
//! the fault points compiled in but *no plan armed* — each fault point
//! is then one relaxed atomic load. Its target is the same <2% envelope
//! against the bare run: a chaos-capable build must cost nothing until
//! a plan is armed.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_core::{
    Campaign, CampaignObserver, CampaignSpec, ExperimentConfig, Framework, MetricsRegistry,
    TelemetryObserver,
};
use hetsched_heuristics::SeedKind;
use std::hint::black_box;
use std::sync::{Arc, Once};
use std::time::Instant;

const REPLICATES: usize = 4;

fn eight_cell_config() -> ExperimentConfig {
    ExperimentConfig {
        tasks: 30,
        population: 12,
        snapshots: vec![5, 10],
        seeds: vec![SeedKind::MinEnergy, SeedKind::Random],
        parallel: false,
        ..ExperimentConfig::dataset1()
    }
}

fn eight_cell_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single(&eight_cell_config());
    spec.replicates = REPLICATES;
    spec
}

fn campaign_overhead(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    let config = eight_cell_config();
    let framework = Framework::new(&config).expect("dataset 1 builds");
    let spec = eight_cell_spec();

    REPORT.call_once(|| {
        // Warm both paths once, then take the median of a few timed runs
        // so the printed ratio is not dominated by a single outlier.
        let median = |f: &dyn Fn()| -> f64 {
            f();
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let t = Instant::now();
                    f();
                    t.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[samples.len() / 2]
        };
        let bare = median(&|| {
            black_box(framework.run_replicated(REPLICATES).unwrap());
        });
        let campaign = median(&|| {
            black_box(Campaign::new(spec.clone()).run(None).unwrap());
        });
        let instrumented = median(&|| {
            let observer = Arc::new(TelemetryObserver::new(Arc::new(MetricsRegistry::new())));
            black_box(
                Campaign::new(spec.clone())
                    .with_observer(observer as Arc<dyn CampaignObserver>)
                    .run(None)
                    .unwrap(),
            );
        });
        eprintln!(
            "\n[campaign] 8-cell workload: bare {:.1} ms, campaign {:.1} ms — overhead {:+.2}% (target < 2%); \
             instrumented {:.1} ms — telemetry cost {:+.2}%",
            bare * 1e3,
            campaign * 1e3,
            (campaign / bare - 1.0) * 100.0,
            instrumented * 1e3,
            (instrumented / campaign - 1.0) * 100.0
        );
    });

    let mut group = c.benchmark_group("campaign_overhead");
    group.sample_size(10);
    group.bench_function("bare_run_replicated_8_cells", |b| {
        b.iter(|| black_box(framework.run_replicated(REPLICATES).unwrap()))
    });
    group.bench_function("campaign_8_cells", |b| {
        b.iter(|| black_box(Campaign::new(spec.clone()).run(None).unwrap()))
    });
    group.bench_function("campaign_8_cells_with_telemetry", |b| {
        b.iter(|| {
            let observer = Arc::new(TelemetryObserver::new(Arc::new(MetricsRegistry::new())));
            black_box(
                Campaign::new(spec.clone())
                    .with_observer(observer as Arc<dyn CampaignObserver>)
                    .run(None)
                    .unwrap(),
            )
        })
    });
    // Identical work to `campaign_8_cells`, named separately so the
    // bench trajectory records the cost of the compiled-in span sites
    // while no sink is installed. The assertion keeps the case honest:
    // if some other bench ever installs a process-global sink, this
    // measurement would silently become "tracing enabled".
    group.bench_function("campaign_8_cells_tracing_disabled", |b| {
        assert!(
            !tracing::span_enabled(tracing::Level::ERROR),
            "disabled-tracing bench must run without a span sink installed"
        );
        b.iter(|| black_box(Campaign::new(spec.clone()).run(None).unwrap()))
    });
    // Only meaningful in a chaos build: identical to `campaign_8_cells`
    // except the binary carries the fault points (disarmed). Compare the
    // two to measure the disarmed probe cost.
    #[cfg(feature = "chaos")]
    group.bench_function("campaign_8_cells_chaos_disarmed", |b| {
        assert!(
            !hetsched_core::chaos::is_armed(),
            "disarmed-overhead bench must run without a plan"
        );
        b.iter(|| black_box(Campaign::new(spec.clone()).run(None).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, campaign_overhead);
criterion_main!(benches);
