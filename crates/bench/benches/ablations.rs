//! Ablation benches for the design choices called out in DESIGN.md. Each
//! group times the variants and, once per process, prints a quality
//! comparison (hypervolume / spread / heterogeneity error) so a bench run
//! documents *why* the chosen design wins, not just how fast it is.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_alloc::AllocationProblem;
use hetsched_analysis::{hypervolume, spread, ParetoFront};
use hetsched_bench::ds1_fixture;
use hetsched_heuristics::SeedKind;
use hetsched_moea::nsga2::Survival;
use hetsched_moea::{Individual, Nsga2, Nsga2Config};
use hetsched_sim::Allocation;
use hetsched_stats::{CornishFisher, GramCharlier, Moments, TabulatedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Once;

fn front_of(pop: &[Individual<Allocation>]) -> ParetoFront {
    ParetoFront::from_objectives(pop.iter().map(|i| &i.objectives))
}

/// Seeding ablation: each seed kind vs the all-random population at a fixed
/// small budget (the Figs. 3/4/6 mechanism).
fn ablation_seeding(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    let (system, trace) = ds1_fixture(150);
    let problem = AllocationProblem::new(&system, &trace);
    let cfg = Nsga2Config {
        population: 50,
        mutation_rate: 0.5,
        generations: 30,
        parallel: false,
        ..Default::default()
    };
    let engine = Nsga2::new(&problem, cfg);

    REPORT.call_once(|| {
        // Shared reference corner for hypervolume.
        let mut fronts = Vec::new();
        for kind in SeedKind::ALL {
            let pop = engine.run(kind.seeds(&system, &trace), 42);
            fronts.push((kind, front_of(&pop)));
        }
        let ref_e = fronts
            .iter()
            .flat_map(|(_, f)| f.points())
            .map(|p| p.energy)
            .fold(0.0f64, f64::max);
        eprintln!("\n[ablation] seeding quality at 30 generations (hypervolume, bigger=better):");
        for (kind, front) in &fronts {
            eprintln!(
                "[ablation]   {:<24} hv {:.4e}  ({} points)",
                kind.label(),
                hypervolume(front, 0.0, ref_e),
                front.len()
            );
        }
    });

    let mut group = c.benchmark_group("ablation_seeding");
    group.sample_size(10);
    for kind in [SeedKind::MinEnergy, SeedKind::Random] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(engine.run(kind.seeds(&system, &trace), 42)))
        });
    }
    group.finish();
}

/// Survival-rule ablation: crowding-distance truncation vs naive
/// truncation (quality: front spread — crowding should distribute points
/// more evenly; Deb's Δ closer to 0).
fn ablation_survival(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    let (system, trace) = ds1_fixture(100);
    let problem = AllocationProblem::new(&system, &trace);
    let mk = |survival| Nsga2Config {
        population: 40,
        mutation_rate: 0.5,
        generations: 40,
        parallel: false,
        survival,
        ..Default::default()
    };

    REPORT.call_once(|| {
        let crowd = front_of(&Nsga2::new(&problem, mk(Survival::Crowding)).run(vec![], 7));
        let trunc = front_of(&Nsga2::new(&problem, mk(Survival::Truncate)).run(vec![], 7));
        eprintln!(
            "\n[ablation] survival rule: crowding spread Δ = {:.3} ({} pts) vs naive {:.3} ({} pts)",
            spread(&crowd),
            crowd.len(),
            spread(&trunc),
            trunc.len()
        );
    });

    let mut group = c.benchmark_group("ablation_survival");
    group.sample_size(10);
    group.bench_function("crowding", |b| {
        b.iter(|| black_box(Nsga2::new(&problem, mk(Survival::Crowding)).run(vec![], 7)))
    });
    group.bench_function("naive_truncate", |b| {
        b.iter(|| black_box(Nsga2::new(&problem, mk(Survival::Truncate)).run(vec![], 7)))
    });
    group.finish();
}

/// Mutation-rate sweep ("selected by experimentation" in the paper).
fn ablation_mutation_rate(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    let (system, trace) = ds1_fixture(100);
    let problem = AllocationProblem::new(&system, &trace);
    let mk = |rate| Nsga2Config {
        population: 40,
        mutation_rate: rate,
        generations: 40,
        parallel: false,
        ..Default::default()
    };

    REPORT.call_once(|| {
        eprintln!("\n[ablation] mutation rate sweep (hypervolume at 40 generations):");
        let mut fronts = Vec::new();
        for &rate in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            fronts.push((
                rate,
                front_of(&Nsga2::new(&problem, mk(rate)).run(vec![], 13)),
            ));
        }
        let ref_e = fronts
            .iter()
            .flat_map(|(_, f)| f.points())
            .map(|p| p.energy)
            .fold(0.0f64, f64::max);
        for (rate, front) in &fronts {
            eprintln!(
                "[ablation]   rate {:.2}: hv {:.4e}",
                rate,
                hypervolume(front, 0.0, ref_e)
            );
        }
    });

    let mut group = c.benchmark_group("ablation_mutation_rate");
    group.sample_size(10);
    for &rate in &[0.0, 0.5, 1.0] {
        group.bench_function(format!("rate_{rate}"), |b| {
            b.iter(|| black_box(Nsga2::new(&problem, mk(rate)).run(vec![], 13)))
        });
    }
    group.finish();
}

/// Sampler ablation: Gram-Charlier vs plain normal with the same mean and
/// variance — the GC expansion also matches skewness/kurtosis, a plain
/// normal cannot.
fn ablation_sampler(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    // Target with strong shape (realistic for execution-time data).
    let target = Moments::from_measures(100.0, 900.0, 0.8, 0.9).expect("valid");
    let gc = GramCharlier::new(&target).expect("valid");
    let gc_sampler = gc.positive_sampler().expect("samplable");
    // Plain normal with matching mean/variance only.
    let (mu, sd) = (target.mean, target.std_dev());
    let normal_sampler = TabulatedSampler::from_density(
        |x| (-0.5 * ((x - mu) / sd).powi(2)).exp(),
        mu - 6.0 * sd,
        mu + 6.0 * sd,
        4096,
    )
    .expect("valid density");

    let cf = CornishFisher::new(&target).expect("valid");

    REPORT.call_once(|| {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Moments::from_sample(&gc_sampler.sample_n(&mut rng, 100_000)).expect("ok");
        let b = Moments::from_sample(&normal_sampler.sample_n(&mut rng, 100_000)).expect("ok");
        let cf_sample: Vec<f64> = (0..100_000).map(|_| cf.sample(&mut rng)).collect();
        let c = Moments::from_sample(&cf_sample).expect("ok");
        eprintln!(
            "\n[ablation] sampler shape error vs target (skew {:.2}, kurt {:.2}):",
            target.skewness, target.kurtosis
        );
        eprintln!(
            "[ablation]   gram-charlier : skew {:+.3} kurt {:+.3}",
            a.skewness, a.kurtosis
        );
        eprintln!(
            "[ablation]   cornish-fisher: skew {:+.3} kurt {:+.3}",
            c.skewness, c.kurtosis
        );
        eprintln!(
            "[ablation]   plain normal  : skew {:+.3} kurt {:+.3}",
            b.skewness, b.kurtosis
        );
    });

    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("ablation_sampler");
    group.bench_function("gram_charlier_1k", |b| {
        b.iter(|| black_box(gc_sampler.sample_n(&mut rng, 1000)))
    });
    group.bench_function("cornish_fisher_1k", |b| {
        b.iter(|| black_box((0..1000).map(|_| cf.sample(&mut rng)).collect::<Vec<f64>>()))
    });
    group.bench_function("plain_normal_1k", |b| {
        b.iter(|| black_box(normal_sampler.sample_n(&mut rng, 1000)))
    });
    group.finish();
}

/// Engine ablation: NSGA-II vs SPEA2 on the scheduling problem at the same
/// evaluation budget.
fn ablation_engine(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    let (system, trace) = ds1_fixture(120);
    let problem = AllocationProblem::new(&system, &trace);
    let generations = 40;
    let nsga_cfg = Nsga2Config {
        population: 40,
        mutation_rate: 0.5,
        generations,
        parallel: false,
        ..Default::default()
    };
    let spea_cfg = hetsched_moea::Spea2Config {
        population: 40,
        archive: 40,
        mutation_rate: 0.5,
        generations,
        hv_reference: None,
    };

    let moead_cfg = hetsched_moea::MoeadConfig {
        subproblems: 40,
        neighbours: 8,
        mutation_rate: 0.5,
        generations,
        hv_reference: None,
    };

    REPORT.call_once(|| {
        let nsga = front_of(&Nsga2::new(&problem, nsga_cfg).run(vec![], 21));
        let spea = front_of(&hetsched_moea::spea2(&problem, spea_cfg, vec![], 21));
        let md = front_of(&hetsched_moea::moead(&problem, moead_cfg, vec![], 21));
        let ref_e = nsga
            .points()
            .iter()
            .chain(spea.points())
            .chain(md.points())
            .map(|p| p.energy)
            .fold(0.0f64, f64::max);
        eprintln!(
            "\n[ablation] engines at {generations} generations:\n[ablation]   NSGA-II hv {:.4e} ({} pts, Δ {:.3})\n[ablation]   SPEA2   hv {:.4e} ({} pts, Δ {:.3})\n[ablation]   MOEA/D  hv {:.4e} ({} pts, Δ {:.3})",
            hypervolume(&nsga, 0.0, ref_e),
            nsga.len(),
            spread(&nsga),
            hypervolume(&spea, 0.0, ref_e),
            spea.len(),
            spread(&spea),
            hypervolume(&md, 0.0, ref_e),
            md.len(),
            spread(&md),
        );
    });

    let mut group = c.benchmark_group("ablation_engine");
    group.sample_size(10);
    group.bench_function("nsga2", |b| {
        b.iter(|| black_box(Nsga2::new(&problem, nsga_cfg).run(vec![], 21)))
    });
    group.bench_function("spea2", |b| {
        b.iter(|| black_box(hetsched_moea::spea2(&problem, spea_cfg, vec![], 21)))
    });
    group.bench_function("moead", |b| {
        b.iter(|| black_box(hetsched_moea::moead(&problem, moead_cfg, vec![], 21)))
    });
    group.finish();
}

/// Evaluation-path ablation: the sorted-sweep hot path vs the event-driven
/// reference simulator on identical inputs.
fn ablation_eval_path(c: &mut Criterion) {
    let (system, trace) = ds1_fixture(250);
    let problem = AllocationProblem::new(&system, &trace);
    let mut rng = StdRng::seed_from_u64(6);
    let genome = {
        use hetsched_moea::Problem;
        problem.random_genome(&mut rng)
    };
    let mut ev = hetsched_sim::Evaluator::new(&system, &trace);
    let mut group = c.benchmark_group("ablation_eval_path");
    group.bench_function("sweep", |b| b.iter(|| black_box(ev.evaluate(&genome))));
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            black_box(
                hetsched_sim::evaluate_event_driven(&system, &trace, &genome)
                    .expect("valid allocation"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    ablation_benches,
    ablation_seeding,
    ablation_survival,
    ablation_mutation_rate,
    ablation_sampler,
    ablation_engine,
    ablation_eval_path
);
criterion_main!(ablation_benches);
