//! Observability overhead: the engine run with no observer, with the
//! disabled [`NullObserver`], and with a full metrics-collecting observer.
//!
//! The first two must be within noise of each other — observation is
//! opt-in per generation, and a disabled observer skips both the metric
//! computation and the clock reads. The third quantifies what enabling
//! metrics actually costs (one extra nondominated sort of N survivors plus
//! the hypervolume staircase per generation).

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_alloc::AllocationProblem;
use hetsched_bench::ds1_fixture;
use hetsched_moea::observe::{NullObserver, StatsLog};
use hetsched_moea::{Nsga2, Nsga2Config};
use std::hint::black_box;

fn config() -> Nsga2Config {
    Nsga2Config {
        population: 40,
        mutation_rate: 0.5,
        generations: 10,
        parallel: false,
        hv_reference: Some([1e-9, 1e9]),
        ..Default::default()
    }
}

fn bench_observability(c: &mut Criterion) {
    let (system, trace) = ds1_fixture(100);
    let problem = AllocationProblem::new(&system, &trace);
    let engine = Nsga2::new(&problem, config());

    let mut group = c.benchmark_group("nsga2_observability_100tasks");
    group.sample_size(20);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(engine.run(vec![], 1)))
    });
    group.bench_function("null_observer", |b| {
        b.iter(|| black_box(engine.run_observed(vec![], 1, &[], |_, _| {}, &mut NullObserver)))
    });
    group.bench_function("collecting_observer", |b| {
        b.iter(|| {
            let mut log = StatsLog::default();
            black_box(engine.run_observed(vec![], 1, &[], |_, _| {}, &mut log));
            black_box(log.records.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
