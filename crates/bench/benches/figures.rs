//! One benchmark per paper table/figure. Each bench regenerates the
//! corresponding artifact; the figure experiments run at a reduced
//! iteration scale (the paper's 10⁵–10⁶-iteration schedules are a cluster
//! workload, and Criterion repeats every body dozens of times). Shape
//! checks are asserted inside the bodies so a bench run doubles as a
//! regression test of the figures; paper-vs-measured numbers live in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_core::figures;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_machines", |b| {
        b.iter(|| {
            let t = figures::table1();
            assert_eq!(t.len(), 9);
            black_box(t)
        })
    });
    c.bench_function("table2_programs", |b| {
        b.iter(|| {
            let t = figures::table2();
            assert_eq!(t.len(), 5);
            black_box(t)
        })
    });
    c.bench_function("table3_inventory", |b| {
        b.iter(|| {
            let t = figures::table3();
            assert_eq!(t.iter().map(|(_, n)| n).sum::<u32>(), 30);
            black_box(t)
        })
    });
}

fn bench_fig1_fig2(c: &mut Criterion) {
    c.bench_function("fig1_tuf_curve", |b| {
        b.iter(|| {
            let curve = figures::fig1_curve(200);
            // Monotone non-increasing utility.
            assert!(curve.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9));
            black_box(curve)
        })
    });
    c.bench_function("fig2_dominance", |b| {
        b.iter(|| black_box(figures::fig2_points()))
    });
}

/// Shared shape assertions for the front figures: every population yields a
/// front at every snapshot, and the nondominated union spans a real
/// energy/utility trade-off.
fn assert_front_figure(report: &hetsched_core::AnalysisReport) {
    assert_eq!(report.runs.len(), 5);
    let combined = report.combined_front();
    let lo = combined.min_energy().expect("front non-empty");
    let hi = combined.max_utility().expect("front non-empty");
    assert!(hi.energy >= lo.energy);
    assert!(hi.utility >= lo.utility);
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_dataset1");
    group.sample_size(10);
    group.bench_function("scale_1e-4", |b| {
        b.iter(|| {
            let (report, series) = figures::fig3(0.0001).expect("fig3 runs");
            assert_front_figure(&report);
            black_box(series)
        })
    });
    group.finish();
}

fn bench_fig4_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fig5_dataset2");
    group.sample_size(10);
    group.bench_function("scale_1e-5", |b| {
        b.iter(|| {
            let (report, series) = figures::fig4(0.00001).expect("fig4 runs");
            assert_front_figure(&report);
            let f5 = figures::fig5(&report).expect("front non-empty");
            assert_eq!(f5.front.len(), f5.upe_vs_energy.len());
            black_box((series, f5))
        })
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_dataset3");
    group.sample_size(10);
    group.bench_function("scale_2e-6", |b| {
        b.iter(|| {
            let (report, series) = figures::fig6(0.000002).expect("fig6 runs");
            assert_front_figure(&report);
            black_box(series)
        })
    });
    group.finish();
}

criterion_group!(
    figures_benches,
    bench_tables,
    bench_fig1_fig2,
    bench_fig3,
    bench_fig4_fig5,
    bench_fig6
);
criterion_main!(figures_benches);
