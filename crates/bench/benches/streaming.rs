//! Streaming scheduler throughput: sustained tasks/sec of the
//! rolling-horizon pipeline and the warm-start payoff.
//!
//! Three measured cases drive the same seeded Poisson arrival stream
//! (rate 1.5/s, 4 horizons of 20 s) through a [`StreamRunner`]:
//!
//! - `warm_4_horizons` — NSGA-II re-optimizer warm-started from the
//!   previous front, on under a third of the cold generation budget;
//! - `cold_4_horizons` — the same engine re-seeded from scratch every
//!   horizon, with the generation budget it needs to reach the warm
//!   run's final front quality;
//! - `policy_gupta_4_horizons` — the non-evolutionary Gupta et al.
//!   greedy baseline, bounding what a placement rule costs.
//!
//! The arrival stream is seeded, so every committed record and final
//! front is bit-deterministic; a once-per-process report asserts the
//! quality contract — the warm run's final-front hypervolume (at a
//! reference shared with the cold run) must be at least the cold run's,
//! i.e. "equal front quality" — and prints sustained tasks/sec plus the
//! per-horizon warm:cold cost ratio. CI's bench-smoke job gates the
//! `streaming/*` medians against `BENCH_<date>.json` via
//! `bench_compare` and separately checks that the warm-start median is
//! ≥ 2× cheaper per horizon than the cold-start median.
//!
//! Run:   BENCH_EXPORT=bench-export.jsonl cargo bench -p hetsched-bench --bench streaming
//! Smoke: cargo bench -p hetsched-bench --bench streaming -- --test

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_core::{
    EngineStreamSpec, HorizonConfig, HorizonRecord, OnlinePolicy, OptimizerSpec, StreamConfig,
    StreamRunner,
};
use hetsched_data::real_system;
use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::hypervolume_2d;
use hetsched_moea::{Algorithm, EngineConfig};
use hetsched_workload::{ArrivalSpec, ArrivalStream, TufPolicy};
use std::hint::black_box;
use std::sync::Once;
use std::time::Instant;

const HORIZON: f64 = 20.0;
const UNTIL: f64 = 80.0;
const ARRIVAL_RATE: f64 = 1.5;
const ARRIVAL_SEED: u64 = 0xBE7C;
const POPULATION: usize = 12;
/// The cold baseline's per-horizon generation budget, and the much
/// smaller one the warm-started engine gets. The report asserts the
/// warm run's final-front hypervolume still reaches the cold run's, so
/// the ≥2× per-horizon speed-up CI gates is earned, not configured.
const COLD_GENS: usize = 28;
const WARM_GENS: usize = 8;

fn arrivals() -> ArrivalStream {
    ArrivalStream::new(
        ArrivalSpec::poisson(ARRIVAL_RATE).expect("valid rate"),
        ARRIVAL_SEED,
        real_system().task_type_count(),
        TufPolicy::essc_default(),
    )
}

fn engine_stream(warm_start: bool, generations: usize) -> StreamConfig {
    let engine = EngineConfig::builder()
        .algorithm(Algorithm::Nsga2)
        .population(POPULATION)
        .mutation_rate(0.08)
        .generations(generations)
        .parallel(false)
        .build()
        .expect("valid engine config");
    StreamConfig {
        horizon: HorizonConfig {
            horizon: HORIZON,
            energy_budget: f64::INFINITY,
        },
        optimizer: OptimizerSpec::Engine(EngineStreamSpec {
            engine,
            seed_kind: SeedKind::MinMinCompletionTime,
            rng_seed: 42,
            stream: 0,
            warm_start,
        }),
    }
}

fn policy_stream() -> StreamConfig {
    StreamConfig {
        horizon: HorizonConfig {
            horizon: HORIZON,
            energy_budget: f64::INFINITY,
        },
        optimizer: OptimizerSpec::Policy(OnlinePolicy::GuptaGreedy),
    }
}

/// Drives a fresh runner over the full arrival window; returns the
/// committed records and the final front as engine objectives
/// `[-utility, energy]` (empty for policy streams).
fn drive(config: StreamConfig) -> (Vec<HorizonRecord>, Vec<[f64; 2]>) {
    let mut runner = StreamRunner::new(real_system(), config).expect("stream config");
    let records = runner.drive(&mut arrivals(), UNTIL).expect("stream drives");
    let front = runner
        .last_front()
        .map(|f| f.points().iter().map(|p| [-p.utility, p.energy]).collect())
        .unwrap_or_default();
    (records, front)
}

fn streaming(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        let median_secs = |config: StreamConfig| -> f64 {
            drive(config);
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let t = Instant::now();
                    black_box(drive(config));
                    t.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[samples.len() / 2]
        };

        let (warm, warm_front) = drive(engine_stream(true, WARM_GENS));
        let (cold, cold_front) = drive(engine_stream(false, COLD_GENS));
        let (w, c) = (warm.last().expect("4 ticks"), cold.last().expect("4 ticks"));
        assert_eq!(warm.len(), cold.len());
        assert_eq!(w.tasks, c.tasks, "both runs schedule the same arrivals");

        // Front quality at a reference shared by both runs: the warm
        // run's hypervolume must reach the cold run's despite the much
        // smaller generation budget — otherwise the speed-up is bought
        // with quality and the bench's claim is void.
        let max_energy = warm_front
            .iter()
            .chain(&cold_front)
            .map(|o| o[1])
            .fold(0.0f64, f64::max)
            * 1.000_001;
        let reference = [1e-9, max_energy];
        let warm_hv = hypervolume_2d(warm_front.iter().copied(), reference);
        let cold_hv = hypervolume_2d(cold_front.iter().copied(), reference);
        assert!(
            warm_hv >= cold_hv,
            "warm front hypervolume {warm_hv:.4e} ({WARM_GENS} gens) fell below \
             cold {cold_hv:.4e} ({COLD_GENS} gens): the warm generation budget \
             is too small for the quality contract",
        );

        let warm_t = median_secs(engine_stream(true, WARM_GENS));
        let cold_t = median_secs(engine_stream(false, COLD_GENS));
        let ticks = warm.len() as f64;
        println!(
            "streaming: {} tasks over {} horizons; sustained {:.0} tasks/sec warm \
             ({:.2} ms/horizon), {:.0} tasks/sec cold ({:.2} ms/horizon); \
             warm-start speed-up {:.2}x at equal front quality \
             (hv {:.4e} @ {WARM_GENS} gens vs {:.4e} @ {COLD_GENS} gens)",
            w.tasks,
            warm.len(),
            w.tasks as f64 / warm_t,
            1e3 * warm_t / ticks,
            c.tasks as f64 / cold_t,
            1e3 * cold_t / ticks,
            cold_t / warm_t,
            warm_hv,
            cold_hv,
        );
    });

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.bench_function("warm_4_horizons", |b| {
        b.iter(|| black_box(drive(engine_stream(true, WARM_GENS))));
    });
    group.bench_function("cold_4_horizons", |b| {
        b.iter(|| black_box(drive(engine_stream(false, COLD_GENS))));
    });
    group.bench_function("policy_gupta_4_horizons", |b| {
        b.iter(|| black_box(drive(policy_stream())));
    });
    group.finish();
}

criterion_group!(benches, streaming);
criterion_main!(benches);
