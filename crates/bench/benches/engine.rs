//! Micro-benchmarks of the hot paths: fitness evaluation at the paper's
//! three trace sizes, nondominated sorting, crowding distance, one full
//! NSGA-II generation, the seeding heuristics, and the Gram-Charlier
//! sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_alloc::AllocationProblem;
use hetsched_bench::{ds1_fixture, ds2_fixture};
use hetsched_heuristics::{
    max_utility, min_energy, min_min_completion_time, min_min_completion_time_naive,
};
use hetsched_moea::problem::Schaffer;
use hetsched_moea::{
    crowding_distance, fast_nondominated_sort, Nsga2, Nsga2Config, Objectives, Problem,
};
use hetsched_sim::Evaluator;
use hetsched_stats::{GramCharlier, Moments};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Fitness evaluation at the paper's trace sizes (250 / 1000 / 4000 tasks).
fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_allocation");
    for &tasks in &[250usize, 1000, 4000] {
        let (system, trace) = if tasks == 250 {
            ds1_fixture(tasks)
        } else {
            ds2_fixture(tasks, if tasks == 4000 { 3600.0 } else { 900.0 })
        };
        let problem = AllocationProblem::new(&system, &trace);
        let mut rng = StdRng::seed_from_u64(1);
        let genome = problem.random_genome(&mut rng);
        let mut ev = Evaluator::new(&system, &trace);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| black_box(ev.evaluate(black_box(&genome))))
        });
    }
    group.finish();
}

fn random_points(n: usize) -> Vec<Objectives> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| [rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0])
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_nondominated_sort");
    for &n in &[200usize, 1000] {
        let points = random_points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(fast_nondominated_sort(black_box(&points))))
        });
    }
    group.finish();

    let points = random_points(200);
    let fronts = fast_nondominated_sort(&points);
    let first = fronts[0].clone();
    c.bench_function("crowding_distance_front", |b| {
        b.iter(|| black_box(crowding_distance(black_box(&first), black_box(&points))))
    });
}

/// One NSGA-II generation on the scheduling problem (population 100,
/// 250 tasks) — the unit the paper's iteration counts multiply.
fn bench_generation(c: &mut Criterion) {
    let (system, trace) = ds1_fixture(250);
    let problem = AllocationProblem::new(&system, &trace);
    let mut group = c.benchmark_group("nsga2_generation_250tasks");
    group.sample_size(20);
    for &parallel in &[false, true] {
        let cfg = Nsga2Config {
            population: 100,
            mutation_rate: 0.5,
            generations: 1,
            parallel,
            ..Default::default()
        };
        let engine = Nsga2::new(&problem, cfg);
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_function(label, |b| b.iter(|| black_box(engine.run(vec![], 3))));
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let (system, trace) = ds2_fixture(1000, 900.0);
    let mut group = c.benchmark_group("seeding_heuristics_1000tasks");
    group.sample_size(20);
    group.bench_function("min_energy", |b| {
        b.iter(|| black_box(min_energy(&system, &trace)))
    });
    group.bench_function("max_utility", |b| {
        b.iter(|| black_box(max_utility(&system, &trace)))
    });
    group.bench_function("min_min", |b| {
        b.iter(|| black_box(min_min_completion_time(&system, &trace)))
    });
    group.finish();

    // Implementation ablation: the cached-best Min-Min vs the naive
    // O(T²·M) reference it was validated against.
    let mut group = c.benchmark_group("minmin_implementation");
    group.sample_size(10);
    group.bench_function("cached_best", |b| {
        b.iter(|| black_box(min_min_completion_time(&system, &trace)))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(min_min_completion_time_naive(&system, &trace)))
    });
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let target = Moments::from_measures(100.0, 400.0, 0.5, 0.4).expect("valid moments");
    let gc = GramCharlier::new(&target).expect("valid expansion");
    c.bench_function("gram_charlier_build_sampler", |b| {
        b.iter(|| black_box(gc.positive_sampler().expect("samplable")))
    });
    let sampler = gc.positive_sampler().expect("samplable");
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("gram_charlier_sample_1k", |b| {
        b.iter(|| black_box(sampler.sample_n(&mut rng, 1000)))
    });
}

/// Reference point: the engine on a trivial problem, isolating engine
/// overhead from evaluation cost.
fn bench_engine_overhead(c: &mut Criterion) {
    let problem = Schaffer::default();
    let cfg = Nsga2Config {
        population: 100,
        mutation_rate: 0.5,
        generations: 10,
        parallel: false,
        ..Default::default()
    };
    let engine = Nsga2::new(&problem, cfg);
    let mut group = c.benchmark_group("engine_overhead_schaffer");
    group.sample_size(30);
    group.bench_function("10_generations", |b| {
        b.iter(|| black_box(engine.run(vec![], 9)))
    });
    group.finish();
}

criterion_group!(
    engine_benches,
    bench_evaluation,
    bench_sorting,
    bench_generation,
    bench_heuristics,
    bench_sampler,
    bench_engine_overhead
);
criterion_main!(engine_benches);
