//! Minimal flag parser — the CLI's surface is small enough that a
//! hand-rolled parser beats pulling in a dependency.

use crate::error::CliError;
use hetsched_core::Algorithm;
use hetsched_sim::OnlinePolicy;
use std::time::Duration;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// Data set selector (1-3).
    pub set: u8,
    /// Iteration-schedule scale factor.
    pub scale: f64,
    /// Trace-length override.
    pub tasks: Option<usize>,
    /// Trace/stream duration override in seconds.
    pub duration: Option<f64>,
    /// Rolling-horizon streaming mode (`run --online`).
    pub online: bool,
    /// Horizon tick length in seconds (streaming `run` only).
    pub horizon: Option<f64>,
    /// Arrival-process spec, e.g. `poisson:2.5` or
    /// `poisson:2,burst:4x60` (streaming `run` only).
    pub arrivals: Option<String>,
    /// Use a non-evolutionary per-arrival policy instead of the engine
    /// (streaming `run` only).
    pub policy: Option<OnlinePolicy>,
    /// Re-seed every horizon from scratch instead of warm-starting from
    /// the previous front (streaming `run` only).
    pub cold_start: bool,
    /// Stream-wide committed-energy cap in joules (streaming `run` only).
    pub energy_budget: Option<f64>,
    /// Population size.
    pub population: usize,
    /// Master RNG seed.
    pub rng_seed: u64,
    /// MOEA family to evolve with (`run`, `attain`).
    pub algorithm: Algorithm,
    /// Replicate count: campaign replicates for `run` (default 1), run
    /// repetitions for `attain` (default 5).
    pub replicates: Option<usize>,
    /// Campaign manifest path (`run` only): checkpoint cells as they
    /// finish and resume from the file on restart.
    pub manifest: Option<String>,
    /// Worker identity for `hetsched work` (defaults to `host:pid`).
    pub worker_id: Option<String>,
    /// Lease time-to-live in seconds for `hetsched work`: how long a
    /// claimed cell stays fenced off before peers may steal it.
    pub lease_ttl: Option<f64>,
    /// Canonical JSON dump of the campaign's replicate reports
    /// (campaign `run` and `work`): byte-identical across processes
    /// that computed the same campaign, used for merge verification.
    pub reports_out: Option<String>,
    /// Output path (stdout when absent).
    pub out: Option<String>,
    /// Emit JSON instead of CSV.
    pub json: bool,
    /// Per-generation metrics journal path (JSONL; `run` command only).
    pub metrics_out: Option<String>,
    /// Campaign heartbeat path (JSONL progress lines, appended; campaign
    /// `run` only).
    pub heartbeat_out: Option<String>,
    /// Seconds between heartbeat lines.
    pub heartbeat_every: f64,
    /// Prometheus-style metrics snapshot path, written when the campaign
    /// finishes (campaign `run` only).
    pub telemetry_out: Option<String>,
    /// Per-cell wall-clock watchdog budget (campaign `run` only): an
    /// attempt exceeding it is recorded as timed out without retrying.
    pub cell_timeout: Option<Duration>,
    /// Fault-injection plan (chaos-enabled builds only), e.g.
    /// `seed=7;campaign.cell.run@2=panic;manifest.append@1=io`.
    pub chaos_plan: Option<String>,
    /// Re-execute cells the manifest marks quarantined (timed out or
    /// attempt-budget exhausted) instead of replaying the failure.
    pub requeue_quarantined: bool,
    /// Listen address for the `serve` daemon (`host:port`; port 0 picks
    /// an ephemeral port).
    pub addr: String,
    /// Daemon state directory holding per-job campaign manifests
    /// (`serve` only; default `hetsched-state`).
    pub state_dir: Option<String>,
    /// Campaign worker threads for the `serve` daemon.
    pub workers: usize,
    /// Stderr log verbosity: a default level plus optional RUST_LOG-style
    /// `target=level` rules (e.g. `info,hetsched_core::campaign=debug`).
    pub log_directives: tracing::Directives,
    /// Span trace output path (JSONL, appended; installs the process
    /// span sink).
    pub trace_out: Option<String>,
    /// Row budget for top-N listings (`trace` command).
    pub top: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            positional: Vec::new(),
            set: 1,
            scale: 0.001,
            tasks: None,
            duration: None,
            online: false,
            horizon: None,
            arrivals: None,
            policy: None,
            cold_start: false,
            energy_budget: None,
            population: 100,
            rng_seed: 0x5EED,
            algorithm: Algorithm::default(),
            replicates: None,
            manifest: None,
            worker_id: None,
            lease_ttl: None,
            reports_out: None,
            out: None,
            json: false,
            metrics_out: None,
            heartbeat_out: None,
            heartbeat_every: 5.0,
            telemetry_out: None,
            cell_timeout: None,
            chaos_plan: None,
            requeue_quarantined: false,
            addr: "127.0.0.1:7878".to_string(),
            state_dir: None,
            workers: 2,
            log_directives: tracing::Directives::new(tracing::Level::WARN),
            trace_out: None,
            top: 10,
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

impl Options {
    /// Parses flags; unknown flags are errors, anything without a leading
    /// `--` is positional.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<&String, CliError> {
                it.next()
                    .ok_or_else(|| usage(format!("--{flag} requires a value")))
            };
            match arg.as_str() {
                "--set" => {
                    opts.set = value_for("set")?
                        .parse()
                        .map_err(|_| usage("--set must be 1, 2, or 3"))?;
                    if !(1..=3).contains(&opts.set) {
                        return Err(usage("--set must be 1, 2, or 3"));
                    }
                }
                "--scale" => {
                    opts.scale = value_for("scale")?
                        .parse()
                        .map_err(|_| usage("--scale must be a number"))?;
                    if opts.scale <= 0.0 || opts.scale.is_nan() {
                        return Err(usage("--scale must be > 0"));
                    }
                }
                "--tasks" => {
                    opts.tasks = Some(
                        value_for("tasks")?
                            .parse()
                            .map_err(|_| usage("--tasks must be a positive integer"))?,
                    );
                }
                "--duration" => {
                    let d: f64 = value_for("duration")?
                        .parse()
                        .map_err(|_| usage("--duration must be a number of seconds"))?;
                    if !(d.is_finite() && d > 0.0) {
                        return Err(usage("--duration must be > 0"));
                    }
                    opts.duration = Some(d);
                }
                "--horizon" => {
                    let h: f64 = value_for("horizon")?
                        .parse()
                        .map_err(|_| usage("--horizon must be a number of seconds"))?;
                    if !(h.is_finite() && h > 0.0) {
                        return Err(usage("--horizon must be > 0"));
                    }
                    opts.horizon = Some(h);
                }
                "--arrivals" => {
                    let spec = value_for("arrivals")?.clone();
                    // Validate the grammar up front so a typo is a usage
                    // error, not a runtime failure mid-stream.
                    spec.parse::<hetsched_workload::ArrivalSpec>()
                        .map_err(|e| usage(format!("--arrivals: {e}")))?;
                    opts.arrivals = Some(spec);
                }
                "--policy" => {
                    opts.policy = Some(
                        value_for("policy")?
                            .parse()
                            .map_err(|_| usage("--policy must be max-utility or gupta"))?,
                    );
                }
                "--energy-budget" => {
                    let b: f64 = value_for("energy-budget")?
                        .parse()
                        .map_err(|_| usage("--energy-budget must be a number of joules"))?;
                    if !(b.is_finite() && b > 0.0) {
                        return Err(usage("--energy-budget must be > 0"));
                    }
                    opts.energy_budget = Some(b);
                }
                "--pop" => {
                    opts.population = value_for("pop")?
                        .parse()
                        .map_err(|_| usage("--pop must be a positive integer"))?;
                }
                "--rng" => {
                    opts.rng_seed = value_for("rng")?
                        .parse()
                        .map_err(|_| usage("--rng must be an integer seed"))?;
                }
                "--algorithm" => {
                    opts.algorithm = value_for("algorithm")?
                        .parse()
                        .map_err(|_| usage("--algorithm must be nsga2, moead, or spea2"))?;
                }
                "--replicates" => {
                    let n: usize = value_for("replicates")?
                        .parse()
                        .map_err(|_| usage("--replicates must be a positive integer"))?;
                    if n == 0 {
                        return Err(usage("--replicates must be >= 1"));
                    }
                    opts.replicates = Some(n);
                }
                "--manifest" => {
                    opts.manifest = Some(value_for("manifest")?.clone());
                }
                "--worker-id" => {
                    let id = value_for("worker-id")?.clone();
                    if id.is_empty() {
                        return Err(usage("--worker-id must not be empty"));
                    }
                    opts.worker_id = Some(id);
                }
                "--lease-ttl" => {
                    let ttl: f64 = value_for("lease-ttl")?
                        .parse()
                        .map_err(|_| usage("--lease-ttl must be a number of seconds"))?;
                    if !(ttl.is_finite() && ttl > 0.0) {
                        return Err(usage("--lease-ttl must be > 0"));
                    }
                    opts.lease_ttl = Some(ttl);
                }
                "--reports-out" => {
                    opts.reports_out = Some(value_for("reports-out")?.clone());
                }
                "--out" => {
                    opts.out = Some(value_for("out")?.clone());
                }
                "--metrics-out" => {
                    opts.metrics_out = Some(value_for("metrics-out")?.clone());
                }
                "--heartbeat-out" => {
                    opts.heartbeat_out = Some(value_for("heartbeat-out")?.clone());
                }
                "--heartbeat-every" => {
                    opts.heartbeat_every = value_for("heartbeat-every")?
                        .parse()
                        .map_err(|_| usage("--heartbeat-every must be a number of seconds"))?;
                    if opts.heartbeat_every <= 0.0 || opts.heartbeat_every.is_nan() {
                        return Err(usage("--heartbeat-every must be > 0"));
                    }
                }
                "--telemetry-out" => {
                    opts.telemetry_out = Some(value_for("telemetry-out")?.clone());
                }
                "--cell-timeout" => {
                    let secs: f64 = value_for("cell-timeout")?
                        .parse()
                        .map_err(|_| usage("--cell-timeout must be a number of seconds"))?;
                    if secs <= 0.0 || !secs.is_finite() {
                        return Err(usage("--cell-timeout must be > 0"));
                    }
                    opts.cell_timeout = Some(Duration::from_secs_f64(secs));
                }
                "--chaos-plan" => {
                    opts.chaos_plan = Some(value_for("chaos-plan")?.clone());
                }
                "--addr" => {
                    opts.addr = value_for("addr")?.clone();
                    if !opts.addr.contains(':') {
                        return Err(usage("--addr must be host:port"));
                    }
                }
                "--state-dir" => {
                    opts.state_dir = Some(value_for("state-dir")?.clone());
                }
                "--workers" => {
                    let n: usize = value_for("workers")?
                        .parse()
                        .map_err(|_| usage("--workers must be a positive integer"))?;
                    if n == 0 {
                        return Err(usage("--workers must be >= 1"));
                    }
                    opts.workers = n;
                }
                "--log-level" => {
                    opts.log_directives = value_for("log-level")?.parse().map_err(|_| {
                        usage(
                            "--log-level must be error, warn, info, debug, or trace, \
                             optionally with `target=level` rules \
                             (e.g. info,hetsched_core::campaign=debug,hetsched_sim=off)",
                        )
                    })?;
                }
                "--trace-out" => {
                    opts.trace_out = Some(value_for("trace-out")?.clone());
                }
                "--top" => {
                    let n: usize = value_for("top")?
                        .parse()
                        .map_err(|_| usage("--top must be a positive integer"))?;
                    if n == 0 {
                        return Err(usage("--top must be >= 1"));
                    }
                    opts.top = n;
                }
                "--json" => opts.json = true,
                "--online" => opts.online = true,
                "--cold-start" => opts.cold_start = true,
                "--requeue-quarantined" => opts.requeue_quarantined = true,
                flag if flag.starts_with("--") => {
                    return Err(usage(format!("unknown flag `{flag}`")));
                }
                positional => opts.positional.push(positional.to_string()),
            }
        }
        Ok(opts)
    }

    /// Writes `content` to `--out` or stdout. File output goes through
    /// [`hetsched_core::durable_write`], so an interrupted rerun never
    /// leaves a half-written report over a previous good one.
    pub fn emit(&self, content: &str) -> Result<(), CliError> {
        match &self.out {
            Some(path) => {
                hetsched_core::durable_write(path, content).map_err(|e| CliError::io(path, e))
            }
            None => {
                println!("{content}");
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).unwrap();
        assert_eq!(o.set, 1);
        assert_eq!(o.population, 100);
        assert_eq!(o.algorithm, Algorithm::Nsga2);
        assert_eq!(o.replicates, None);
        assert!(o.manifest.is_none());
        assert!(!o.json);
    }

    #[test]
    fn parses_all_flags() {
        let o = Options::parse(&argv(
            "5 --set 2 --scale 0.5 --tasks 42 --pop 10 --rng 7 --json \
             --algorithm spea2 --replicates 3 --manifest cells.jsonl \
             --metrics-out run.jsonl --heartbeat-out hb.jsonl \
             --heartbeat-every 0.5 --telemetry-out metrics.prom \
             --cell-timeout 2.5 --log-level debug",
        ))
        .unwrap();
        assert_eq!(o.positional, vec!["5"]);
        assert_eq!(o.set, 2);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.tasks, Some(42));
        assert_eq!(o.population, 10);
        assert_eq!(o.rng_seed, 7);
        assert!(o.json);
        assert_eq!(o.algorithm, Algorithm::Spea2);
        assert_eq!(o.replicates, Some(3));
        assert_eq!(o.manifest.as_deref(), Some("cells.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("run.jsonl"));
        assert_eq!(o.heartbeat_out.as_deref(), Some("hb.jsonl"));
        assert_eq!(o.heartbeat_every, 0.5);
        assert_eq!(o.telemetry_out.as_deref(), Some("metrics.prom"));
        assert_eq!(o.cell_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(
            o.log_directives,
            tracing::Directives::new(tracing::Level::DEBUG)
        );
    }

    #[test]
    fn log_level_accepts_per_target_directives() {
        let o = Options::parse(&argv(
            "--log-level info,hetsched_core::campaign=debug,hetsched_sim=off",
        ))
        .unwrap();
        assert_eq!(
            o.log_directives.level_for("hetsched_core::campaign::inner"),
            Some(tracing::Level::DEBUG)
        );
        assert_eq!(o.log_directives.level_for("hetsched_sim"), None);
        assert_eq!(
            o.log_directives.level_for("elsewhere"),
            Some(tracing::Level::INFO)
        );
        assert!(Options::parse(&argv("--log-level info,=debug")).is_err());
    }

    #[test]
    fn trace_flags_parse() {
        let o = Options::parse(&argv("--trace-out spans.jsonl --top 3")).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("spans.jsonl"));
        assert_eq!(o.top, 3);
        let o = Options::parse(&[]).unwrap();
        assert!(o.trace_out.is_none());
        assert_eq!(o.top, 10);
        assert!(Options::parse(&argv("--trace-out")).is_err());
        assert!(Options::parse(&argv("--top 0")).is_err());
        assert!(Options::parse(&argv("--top lots")).is_err());
    }

    #[test]
    fn algorithm_accepts_every_engine_label() {
        for (label, expected) in [
            ("nsga2", Algorithm::Nsga2),
            ("moead", Algorithm::Moead),
            ("spea2", Algorithm::Spea2),
        ] {
            let o = Options::parse(&argv(&format!("--algorithm {label}"))).unwrap();
            assert_eq!(o.algorithm, expected);
        }
    }

    #[test]
    fn rejects_bad_values() {
        assert!(Options::parse(&argv("--set 4")).is_err());
        assert!(Options::parse(&argv("--set x")).is_err());
        assert!(Options::parse(&argv("--scale 0")).is_err());
        assert!(Options::parse(&argv("--scale -1")).is_err());
        assert!(Options::parse(&argv("--tasks")).is_err());
        assert!(Options::parse(&argv("--frobnicate 1")).is_err());
        assert!(Options::parse(&argv("--log-level loud")).is_err());
        assert!(Options::parse(&argv("--metrics-out")).is_err());
        assert!(Options::parse(&argv("--algorithm genetic")).is_err());
        assert!(Options::parse(&argv("--replicates 0")).is_err());
        assert!(Options::parse(&argv("--manifest")).is_err());
        assert!(Options::parse(&argv("--heartbeat-every 0")).is_err());
        assert!(Options::parse(&argv("--heartbeat-every -1")).is_err());
        assert!(Options::parse(&argv("--heartbeat-every soon")).is_err());
        assert!(Options::parse(&argv("--heartbeat-out")).is_err());
        assert!(Options::parse(&argv("--telemetry-out")).is_err());
        assert!(Options::parse(&argv("--cell-timeout 0")).is_err());
        assert!(Options::parse(&argv("--cell-timeout -3")).is_err());
        assert!(Options::parse(&argv("--cell-timeout later")).is_err());
        assert!(Options::parse(&argv("--chaos-plan")).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let o =
            Options::parse(&argv("--addr 0.0.0.0:8080 --state-dir /tmp/st --workers 4")).unwrap();
        assert_eq!(o.addr, "0.0.0.0:8080");
        assert_eq!(o.state_dir.as_deref(), Some("/tmp/st"));
        assert_eq!(o.workers, 4);
        // Defaults.
        let o = Options::parse(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert!(o.state_dir.is_none());
        assert_eq!(o.workers, 2);
        // Rejections.
        assert!(Options::parse(&argv("--addr localhost")).is_err());
        assert!(Options::parse(&argv("--workers 0")).is_err());
        assert!(Options::parse(&argv("--workers many")).is_err());
        assert!(Options::parse(&argv("--state-dir")).is_err());
    }

    #[test]
    fn parses_streaming_flags() {
        let o = Options::parse(&argv(
            "--online --horizon 30 --arrivals poisson:2.5,burst:4x60 \
             --duration 120 --energy-budget 5e6 --cold-start",
        ))
        .unwrap();
        assert!(o.online);
        assert_eq!(o.horizon, Some(30.0));
        assert_eq!(o.arrivals.as_deref(), Some("poisson:2.5,burst:4x60"));
        assert_eq!(o.duration, Some(120.0));
        assert_eq!(o.energy_budget, Some(5e6));
        assert!(o.cold_start);
        assert!(o.policy.is_none());
        let o = Options::parse(&argv("--online --arrivals poisson:1 --policy gupta")).unwrap();
        assert_eq!(o.policy, Some(OnlinePolicy::GuptaGreedy));
        // Defaults.
        let o = Options::parse(&[]).unwrap();
        assert!(!o.online);
        assert!(!o.cold_start);
        assert!(o.horizon.is_none() && o.arrivals.is_none() && o.energy_budget.is_none());
    }

    #[test]
    fn rejects_bad_streaming_values() {
        assert!(Options::parse(&argv("--horizon 0")).is_err());
        assert!(Options::parse(&argv("--horizon -5")).is_err());
        assert!(Options::parse(&argv("--horizon soon")).is_err());
        assert!(Options::parse(&argv("--duration 0")).is_err());
        assert!(Options::parse(&argv("--energy-budget 0")).is_err());
        assert!(Options::parse(&argv("--policy thorough")).is_err());
        // The arrival grammar is validated at parse time.
        assert!(Options::parse(&argv("--arrivals poisson:0")).is_err());
        assert!(Options::parse(&argv("--arrivals uniform:3")).is_err());
        assert!(Options::parse(&argv("--arrivals poisson:2,burst:0.5x60")).is_err());
    }

    #[test]
    fn requeue_quarantined_is_a_bare_flag() {
        assert!(!Options::parse(&[]).unwrap().requeue_quarantined);
        let o = Options::parse(&argv("--requeue-quarantined")).unwrap();
        assert!(o.requeue_quarantined);
    }

    #[test]
    fn parses_worker_flags() {
        let o = Options::parse(&argv(
            "--worker-id w1 --lease-ttl 2.5 --reports-out reports.json",
        ))
        .unwrap();
        assert_eq!(o.worker_id.as_deref(), Some("w1"));
        assert_eq!(o.lease_ttl, Some(2.5));
        assert_eq!(o.reports_out.as_deref(), Some("reports.json"));
        // Defaults.
        let o = Options::parse(&[]).unwrap();
        assert!(o.worker_id.is_none() && o.lease_ttl.is_none() && o.reports_out.is_none());
        // Rejections.
        assert!(Options::parse(&argv("--worker-id")).is_err());
        assert!(Options::parse(&["--worker-id".into(), String::new()]).is_err());
        assert!(Options::parse(&argv("--lease-ttl 0")).is_err());
        assert!(Options::parse(&argv("--lease-ttl -1")).is_err());
        assert!(Options::parse(&argv("--lease-ttl inf")).is_err());
        assert!(Options::parse(&argv("--lease-ttl soon")).is_err());
        assert!(Options::parse(&argv("--reports-out")).is_err());
    }

    #[test]
    fn chaos_plan_is_captured_verbatim() {
        let o = Options::parse(&argv("--chaos-plan seed=7;manifest.append@1=io")).unwrap();
        assert_eq!(o.chaos_plan.as_deref(), Some("seed=7;manifest.append@1=io"));
    }

    #[test]
    fn parse_failures_are_usage_errors() {
        let err = Options::parse(&argv("--algorithm genetic")).unwrap_err();
        assert!(err.is_usage());
        assert_eq!(err.exit_code(), 2);
    }
}
