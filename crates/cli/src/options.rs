//! Minimal flag parser — the CLI's surface is small enough that a
//! hand-rolled parser beats pulling in a dependency.

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// Data set selector (1-3).
    pub set: u8,
    /// Iteration-schedule scale factor.
    pub scale: f64,
    /// Trace-length override.
    pub tasks: Option<usize>,
    /// Population size.
    pub population: usize,
    /// Master RNG seed.
    pub rng_seed: u64,
    /// Output path (stdout when absent).
    pub out: Option<String>,
    /// Emit JSON instead of CSV.
    pub json: bool,
    /// Per-generation metrics journal path (JSONL; `run` command only).
    pub metrics_out: Option<String>,
    /// Stderr log verbosity for the tracing subscriber.
    pub log_level: tracing::Level,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            positional: Vec::new(),
            set: 1,
            scale: 0.001,
            tasks: None,
            population: 100,
            rng_seed: 0x5EED,
            out: None,
            json: false,
            metrics_out: None,
            log_level: tracing::Level::WARN,
        }
    }
}

impl Options {
    /// Parses flags; unknown flags are errors, anything without a leading
    /// `--` is positional.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<&String, String> {
                it.next()
                    .ok_or_else(|| format!("--{flag} requires a value"))
            };
            match arg.as_str() {
                "--set" => {
                    opts.set = value_for("set")?
                        .parse()
                        .map_err(|_| "--set must be 1, 2, or 3".to_string())?;
                    if !(1..=3).contains(&opts.set) {
                        return Err("--set must be 1, 2, or 3".into());
                    }
                }
                "--scale" => {
                    opts.scale = value_for("scale")?
                        .parse()
                        .map_err(|_| "--scale must be a number".to_string())?;
                    if opts.scale <= 0.0 || opts.scale.is_nan() {
                        return Err("--scale must be > 0".into());
                    }
                }
                "--tasks" => {
                    opts.tasks = Some(
                        value_for("tasks")?
                            .parse()
                            .map_err(|_| "--tasks must be a positive integer".to_string())?,
                    );
                }
                "--pop" => {
                    opts.population = value_for("pop")?
                        .parse()
                        .map_err(|_| "--pop must be a positive integer".to_string())?;
                }
                "--rng" => {
                    opts.rng_seed = value_for("rng")?
                        .parse()
                        .map_err(|_| "--rng must be an integer seed".to_string())?;
                }
                "--out" => {
                    opts.out = Some(value_for("out")?.clone());
                }
                "--metrics-out" => {
                    opts.metrics_out = Some(value_for("metrics-out")?.clone());
                }
                "--log-level" => {
                    opts.log_level = value_for("log-level")?.parse().map_err(|_| {
                        "--log-level must be error, warn, info, debug, or trace".to_string()
                    })?;
                }
                "--json" => opts.json = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                positional => opts.positional.push(positional.to_string()),
            }
        }
        Ok(opts)
    }

    /// Writes `content` to `--out` or stdout.
    pub fn emit(&self, content: &str) -> Result<(), String> {
        match &self.out {
            Some(path) => {
                std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
            }
            None => {
                println!("{content}");
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).unwrap();
        assert_eq!(o.set, 1);
        assert_eq!(o.population, 100);
        assert!(!o.json);
    }

    #[test]
    fn parses_all_flags() {
        let o = Options::parse(&argv(
            "5 --set 2 --scale 0.5 --tasks 42 --pop 10 --rng 7 --json \
             --metrics-out run.jsonl --log-level debug",
        ))
        .unwrap();
        assert_eq!(o.positional, vec!["5"]);
        assert_eq!(o.set, 2);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.tasks, Some(42));
        assert_eq!(o.population, 10);
        assert_eq!(o.rng_seed, 7);
        assert!(o.json);
        assert_eq!(o.metrics_out.as_deref(), Some("run.jsonl"));
        assert_eq!(o.log_level, tracing::Level::DEBUG);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(Options::parse(&argv("--set 4")).is_err());
        assert!(Options::parse(&argv("--set x")).is_err());
        assert!(Options::parse(&argv("--scale 0")).is_err());
        assert!(Options::parse(&argv("--scale -1")).is_err());
        assert!(Options::parse(&argv("--tasks")).is_err());
        assert!(Options::parse(&argv("--frobnicate 1")).is_err());
        assert!(Options::parse(&argv("--log-level loud")).is_err());
        assert!(Options::parse(&argv("--metrics-out")).is_err());
    }
}
