//! `hetsched` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! hetsched dataset --set <1|2|3>            print the system (Tables I-III)
//! hetsched figure <1|2|3|4|5|6> [options]   emit a figure's data as CSV/JSON
//! hetsched run [options]                    run one experiment, print fronts
//! hetsched work --manifest <p> [options]    join a distributed campaign as a worker
//! hetsched seeds [options]                  evaluate the four seeding heuristics
//! hetsched serve [options]                  long-running scheduler daemon (HTTP API)
//!
//! common options:
//!   --set <1|2|3>      data set (default 1)
//!   --scale <f>        fraction of the paper's iteration schedule (default 0.001)
//!   --tasks <n>        override the trace length
//!   --pop <n>          population size (default 100)
//!   --rng <seed>       master RNG seed (default 0x5EED)
//!   --algorithm <a>    MOEA family: nsga2 (default), moead, or spea2
//!   --replicates <n>   replicate the run on decorrelated RNG streams
//!   --manifest <p>     campaign checkpoint file; rerun to resume (run only)
//!   --online           rolling-horizon streaming run (see --arrivals/--horizon)
//!   --arrivals <spec>  arrival process, e.g. poisson:2.5 or poisson:2,burst:4x60
//!   --horizon <s>      re-optimization period in seconds (default 60)
//!   --duration <s>     stream length in seconds (overrides the data set default)
//!   --policy <p>       per-arrival rule instead of the MOEA: max-utility or gupta
//!   --cold-start       re-seed every horizon from scratch (ablation baseline)
//!   --energy-budget <j> stream-wide energy budget in joules
//!   --out <path>       write output to a file instead of stdout
//!   --json             emit JSON instead of CSV (figures only)
//!   --metrics-out <p>  write a per-generation JSONL journal (run only)
//!   --heartbeat-out <p> append JSONL campaign progress lines (campaign run only)
//!   --heartbeat-every <s> seconds between heartbeat lines (default 5)
//!   --telemetry-out <p> write a Prometheus-style metrics snapshot (campaign run only)
//!   --cell-timeout <s> per-cell watchdog budget in seconds (campaign run only)
//!   --requeue-quarantined  re-execute quarantined manifest cells on resume
//!   --chaos-plan <spec> arm a fault-injection plan (chaos-enabled builds only)
//!   --log-level <l>    stderr verbosity: a level, optionally with
//!                      RUST_LOG-style target=level rules (default warn)
//!   --trace-out <p>    append completed spans to a JSONL trace file
//! ```
//!
//! `hetsched trace <file>` summarises a recorded span trace (phase
//! self-times, slowest cells, critical path); `--json` exports Chrome
//! trace-event JSON for Perfetto / chrome://tracing.
//!
//! `hetsched report <manifest-or-journal>` summarises a finished run
//! post hoc (per-cell status, per-population convergence) without
//! re-running anything.
//!
//! Exit codes: 0 success, 1 runtime failure (the cause chain is printed
//! to stderr), 2 usage error.

mod commands;
mod error;
mod options;

use error::CliError;
use options::Options;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            let mut source = std::error::Error::source(&err);
            while let Some(cause) = source {
                eprintln!("  caused by: {cause}");
                source = cause.source();
            }
            if err.is_usage() {
                eprintln!("run `hetsched help` for usage");
            }
            ExitCode::from(err.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let options = Options::parse(&args[1..])?;
    // Armed for the whole command; the guard disarms the global fault
    // registry on drop (chaos-enabled builds only).
    let _chaos = arm_chaos(&options)?;
    // Route engine/framework tracing to stderr at the requested verbosity.
    // try_init: repeated invocations (tests) keep the first subscriber.
    let _ = tracing_subscriber::fmt()
        .with_directives(options.log_directives.clone())
        .try_init();
    // `--trace-out` arms the span sink for the whole command: every span
    // the run closes is appended to the JSONL file as it completes.
    if let Some(path) = &options.trace_out {
        let writer = hetsched_core::TraceWriter::create(path)?;
        hetsched_core::install_tracing(tracing::Level::TRACE, Some(std::sync::Arc::new(writer)))?;
    }
    let result = dispatch(command, &options);
    if options.trace_out.is_some() {
        tracing::flush_span_sink();
    }
    result
}

fn dispatch(command: &str, options: &Options) -> Result<(), CliError> {
    match command {
        "dataset" => commands::dataset(options),
        "figure" => {
            let which = options
                .positional
                .first()
                .ok_or_else(|| CliError::Usage("figure requires a number (1-6)".into()))?
                .parse::<u8>()
                .map_err(|_| CliError::Usage("figure number must be 1-6".into()))?;
            commands::figure(which, options)
        }
        "run" => commands::run_experiment(options),
        "work" => commands::work(options),
        "seeds" => commands::seeds(options),
        "gantt" => commands::gantt(options),
        "online" => commands::online(options),
        "verify-synth" => commands::verify_synth(options),
        "verify" => commands::verify(options),
        "attain" => commands::attain(options),
        "report" => commands::report(options),
        "trace" => commands::trace(options),
        "serve" => commands::serve(options),
        "help" | "--help" | "-h" => {
            println!("{}", HELP);
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Parses and arms `--chaos-plan` when the build carries the `chaos`
/// feature; the returned guard keeps the plan armed for the command and
/// disarms on drop.
#[cfg(feature = "chaos")]
fn arm_chaos(options: &Options) -> Result<Option<hetsched_core::chaos::ArmedGuard>, CliError> {
    let Some(text) = &options.chaos_plan else {
        return Ok(None);
    };
    let plan = hetsched_core::chaos::FaultPlan::parse(text)
        .map_err(|e| CliError::Usage(format!("--chaos-plan: {e}")))?;
    Ok(Some(hetsched_core::chaos::armed(plan)))
}

/// Without the `chaos` feature there is nothing to arm: the fault points
/// are compiled to no-ops, so accepting a plan would silently do nothing.
#[cfg(not(feature = "chaos"))]
fn arm_chaos(options: &Options) -> Result<Option<()>, CliError> {
    if options.chaos_plan.is_some() {
        return Err(CliError::Usage(
            "--chaos-plan requires a chaos-enabled build \
             (rebuild with --features chaos)"
                .into(),
        ));
    }
    Ok(None)
}

const HELP: &str = "\
hetsched — energy/utility trade-off analysis framework

USAGE:
    hetsched dataset [--set 1|2|3] [--rng SEED]
    hetsched figure <1|2|3|4|5|6> [--scale F] [--out PATH] [--json]
    hetsched run [--set 1|2|3] [--tasks N] [--pop N] [--scale F] [--rng SEED]
                 [--algorithm nsga2|moead|spea2] [--replicates N] [--manifest PATH]
                 [--metrics-out PATH] [--heartbeat-out PATH] [--heartbeat-every S]
                 [--telemetry-out PATH] [--cell-timeout S] [--requeue-quarantined]
                 [--chaos-plan SPEC] [--log-level error|warn|info|debug|trace]
    hetsched run --online --arrivals SPEC [--horizon S] [--duration S]
                 [--policy max-utility|gupta] [--cold-start] [--energy-budget J]
                 [--manifest PATH] [--metrics-out PATH]
    hetsched work --manifest PATH [--worker-id ID] [--lease-ttl S]
                  [--replicates N] [--reports-out PATH] [run options]
    hetsched seeds [--set 1|2|3] [--tasks N] [--rng SEED]
    hetsched gantt [--set 1|2|3] [--tasks N]
    hetsched online [--set 1|2|3] [--tasks N]
    hetsched verify-synth [--tasks N] [--rng SEED]
    hetsched verify [--set 1|2|3] [--scale F]
    hetsched attain [--set 1|2|3] [--tasks N] [--pop N] [--scale F] [--replicates N]
    hetsched report [MANIFEST-OR-JOURNAL] [--scale F] [--out PATH]
    hetsched trace TRACE-FILE [--top N] [--json] [--out PATH]
    hetsched serve [--addr HOST:PORT] [--state-dir DIR] [--workers N] [--cell-timeout S]
    hetsched help

`run --replicates N` executes the experiment as a campaign: one cell per
(replicate, seed kind), run in parallel. Add `--manifest PATH` to
checkpoint finished cells; rerunning the same command resumes from the
manifest and executes only the missing cells. `--heartbeat-out PATH`
appends a tail-able JSONL progress line (cells done/total, ETA) every
`--heartbeat-every` seconds, surviving kill-and-resume; `--telemetry-out
PATH` writes a Prometheus-style metrics snapshot when the campaign ends.
`--reports-out PATH` dumps the replicate reports as canonical JSON —
identical bytes from every process that merged the same campaign.

`work` joins the same campaign as one worker process among many: give
every worker the same experiment flags (the campaign fingerprint must
match) and the same shared `--manifest` file. Each worker leases a cell,
runs it, appends the result, and releases; a worker that dies mid-cell
stops renewing its lease, and after `--lease-ttl` seconds (default 30) a
surviving peer steals the cell and re-runs it deterministically. Stale
workers are fenced by lease epoch: their late results are discarded at
append and at merge. Every worker exits with the merged campaign
outcome, byte-identical to a single-process `run`. See README
§ Distributed campaigns.

`run --online` streams instead of batching: a seeded arrival process
(`--arrivals poisson:RATE[,burst:FACTORxPERIOD]`) feeds a
rolling-horizon scheduler that re-optimizes the pending window every
`--horizon` seconds with the configured MOEA, warm-started from the
previous horizon's Pareto front (`--cold-start` disables the warm
start; `--policy gupta|max-utility` swaps in a non-evolutionary
per-arrival rule). Already-started tasks are frozen; the committed
point is the knee of the front, or the best utility fitting
`--energy-budget`. With `--manifest PATH` every feed and commit is
journalled, and rerunning the same command resumes the stream
mid-flight to a byte-identical schedule. See README § Streaming.

`report` with a path summarises a finished campaign manifest (per-cell
status and durations, per-population convergence) or a `--metrics-out`
run journal (convergence and phase-time breakdown) without re-running
anything; without a path it runs the full reproduction suite.

`--trace-out PATH` records every completed tracing span (campaign, cell,
attempt, generation, engine phase, evaluator batch) to an append-mode
JSONL file; `hetsched trace PATH` then prints the per-phase self-time
breakdown, the `--top N` slowest cells, the critical path through the
longest trace, and the parallel speedup (summed cell time over wall
clock). `hetsched trace PATH --json` converts the trace to Chrome
trace-event JSON for Perfetto or chrome://tracing. `--log-level` takes a
default level or full RUST_LOG-style directives, e.g.
`info,hetsched_core::campaign=debug,hetsched_sim=off`.

`--cell-timeout S` puts each campaign cell under a wall-clock watchdog:
an attempt that exceeds the budget is recorded as timed out (terminal,
no retry) while the rest of the campaign carries on. Quarantined cells
(timed out, or panicking through the whole attempt budget) stay failed
across resumes until `--requeue-quarantined` re-executes them.
`--chaos-plan SPEC` arms deterministic fault injection in builds
compiled with `--features chaos` (e.g.
`seed=7;campaign.cell.run@2=panic;manifest.append@1=io`); plain builds
reject the flag, since their fault points are no-ops.

`serve` runs the scheduler as a daemon: campaign jobs are submitted as
JSON over HTTP (POST /v1/jobs), polled (GET /v1/jobs/ID), fetched
(GET /v1/jobs/ID/report), cancelled (DELETE /v1/jobs/ID), and observed
(GET /metrics, Prometheus text). Jobs run concurrently on `--workers`
threads; per-job manifests live under `--state-dir`, so a restarted
daemon resumes finished work instead of recomputing it. SIGINT/SIGTERM
shut the daemon down cleanly. See README § Serve.

Exit codes: 0 success, 1 runtime failure, 2 usage error.";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn missing_command_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&argv("bogus")).is_err());
    }

    #[test]
    fn bad_command_lines_are_usage_errors_with_exit_code_2() {
        for bad in ["", "bogus", "figure", "figure nine", "run --algorithm ga"] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(err.is_usage(), "{bad:?} should be a usage error: {err}");
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn figure_requires_valid_number() {
        assert!(run(&argv("figure")).is_err());
        assert!(run(&argv("figure nine")).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&argv("help")).is_ok());
    }

    #[test]
    fn dataset_one_prints() {
        assert!(run(&argv("dataset --set 1")).is_ok());
    }

    #[test]
    fn tiny_run_completes() {
        assert!(run(&argv("run --set 1 --tasks 20 --pop 8 --scale 0.00002")).is_ok());
    }

    #[test]
    fn tiny_run_completes_with_every_algorithm() {
        for algorithm in ["nsga2", "moead", "spea2"] {
            let cmd =
                format!("run --set 1 --tasks 15 --pop 8 --scale 0.00002 --algorithm {algorithm}");
            assert!(run(&argv(&cmd)).is_ok(), "{algorithm} run failed");
        }
    }

    #[test]
    fn replicated_run_goes_through_the_campaign_path() {
        let out =
            std::env::temp_dir().join(format!("hetsched-cli-camp-{}.txt", std::process::id()));
        let cmd = format!(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --algorithm spea2 \
             --replicates 2 --out {}",
            out.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(text.contains("campaign: data set 1, engine spea2, 2 replicate(s)"));
        assert!(text.contains("replicate 0:"));
        assert!(text.contains("replicate 1:"));
    }

    #[test]
    fn campaign_manifest_is_written_and_resumed() {
        let dir = std::env::temp_dir();
        let manifest = dir.join(format!(
            "hetsched-cli-manifest-{}.jsonl",
            std::process::id()
        ));
        let out = dir.join(format!(
            "hetsched-cli-manifest-out-{}.txt",
            std::process::id()
        ));
        let cmd = format!(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 2 \
             --manifest {} --out {}",
            manifest.display(),
            out.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let lines = std::fs::read_to_string(&manifest).unwrap().lines().count();
        // Header + one record per (replicate, seed kind) cell.
        let cells = 2 * hetsched_core::ExperimentConfig::dataset1().seeds.len();
        assert_eq!(lines, 1 + cells);
        // Second invocation replays every cell from the manifest.
        assert!(run(&argv(&cmd)).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_file(&out);
        assert!(
            text.contains(&format!("0 executed, {cells} replayed")),
            "resume should replay all cells: {text}"
        );
    }

    #[test]
    fn campaign_with_telemetry_writes_heartbeat_and_prometheus_snapshot() {
        let dir = std::env::temp_dir();
        let hb = dir.join(format!("hetsched-cli-hb-{}.jsonl", std::process::id()));
        let prom = dir.join(format!("hetsched-cli-prom-{}.prom", std::process::id()));
        let out = dir.join(format!("hetsched-cli-telem-out-{}.txt", std::process::id()));
        let cmd = format!(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 2 \
             --heartbeat-out {} --heartbeat-every 0.01 --telemetry-out {} --out {}",
            hb.display(),
            prom.display(),
            out.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let hb_text = std::fs::read_to_string(&hb).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        let _ = std::fs::remove_file(&hb);
        let _ = std::fs::remove_file(&prom);
        let _ = std::fs::remove_file(&out);
        // At least the unconditional start and end lines, all valid JSON
        // with monotone progress.
        let cells = 2 * hetsched_core::ExperimentConfig::dataset1().seeds.len() as u64;
        let mut last_done = 0u64;
        let mut lines = 0;
        for line in hb_text.lines() {
            let hb: hetsched_core::HeartbeatLine = serde_json::from_str(line).unwrap();
            assert!(
                hb.cells_done >= last_done,
                "heartbeat progress went backwards"
            );
            assert_eq!(hb.cells_total, cells);
            last_done = hb.cells_done;
            lines += 1;
        }
        assert!(lines >= 2, "expected start+end heartbeat lines: {hb_text}");
        assert_eq!(last_done, cells);
        assert!(prom_text.contains(&format!("hetsched_campaign_cells_finished_total {cells}")));
        assert!(prom_text.contains("hetsched_engine_generations_total"));
        assert!(prom_text.contains("hetsched_campaign_cell_duration_seconds_bucket"));
    }

    #[test]
    fn work_requires_a_manifest() {
        let err = run(&argv("work --tasks 15 --pop 8 --scale 0.00002")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("--manifest"), "{err}");
    }

    #[test]
    fn work_command_runs_a_campaign_and_matches_single_process_reports() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let solo_manifest = dir.join(format!("hetsched-cli-work-solo-{pid}.jsonl"));
        let work_manifest = dir.join(format!("hetsched-cli-work-dist-{pid}.jsonl"));
        let solo_reports = dir.join(format!("hetsched-cli-work-solo-{pid}.json"));
        let work_reports = dir.join(format!("hetsched-cli-work-dist-{pid}.json"));
        let out = dir.join(format!("hetsched-cli-work-out-{pid}.txt"));
        let _ = std::fs::remove_file(&solo_manifest);
        let _ = std::fs::remove_file(&work_manifest);
        let flags = "--set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 1";
        let solo = format!(
            "run {flags} --manifest {} --reports-out {} --out {}",
            solo_manifest.display(),
            solo_reports.display(),
            out.display()
        );
        assert!(run(&argv(&solo)).is_ok());
        let work = format!(
            "work {flags} --manifest {} --worker-id w1 --lease-ttl 30 \
             --reports-out {} --out {}",
            work_manifest.display(),
            work_reports.display(),
            out.display()
        );
        assert!(run(&argv(&work)).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(
            text.contains("worker w1:") && text.contains("executed"),
            "missing worker summary: {text}"
        );
        // The merge contract: a worker campaign's reports are
        // byte-identical to a single-process run of the same spec.
        let solo_json = std::fs::read(&solo_reports).unwrap();
        let work_json = std::fs::read(&work_reports).unwrap();
        assert!(!solo_json.is_empty());
        assert_eq!(solo_json, work_json, "reports diverge across modes");
        // The worker manifest carries lease records alongside cells.
        let manifest_text = std::fs::read_to_string(&work_manifest).unwrap();
        assert!(
            manifest_text.contains("\"kind\":\"lease\""),
            "no lease records: {manifest_text}"
        );
        for p in [
            &solo_manifest,
            &work_manifest,
            &solo_reports,
            &work_reports,
            &out,
        ] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn report_on_a_manifest_prints_cell_table_and_convergence() {
        let dir = std::env::temp_dir();
        let manifest = dir.join(format!(
            "hetsched-cli-report-manifest-{}.jsonl",
            std::process::id()
        ));
        let out = dir.join(format!(
            "hetsched-cli-report-inspect-{}.txt",
            std::process::id()
        ));
        let cmd = format!(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 1 --manifest {}",
            manifest.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let report_cmd = format!("report {} --out {}", manifest.display(), out.display());
        assert!(run(&argv(&report_cmd)).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_file(&out);
        assert!(text.contains("campaign"), "missing header: {text}");
        assert!(text.contains("done"), "missing cell status: {text}");
        assert!(text.contains("nsga2"), "missing cell rows: {text}");
    }

    #[test]
    fn report_on_garbage_path_is_a_runtime_error() {
        assert!(run(&argv("report /nonexistent/path.jsonl")).is_err());
    }

    #[test]
    fn trace_out_records_spans_and_trace_command_analyses_them() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let trace = dir.join(format!("hetsched-cli-trace-{pid}.jsonl"));
        let out = dir.join(format!("hetsched-cli-trace-run-{pid}.txt"));
        let _ = std::fs::remove_file(&trace);
        let cmd = format!(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 2 \
             --trace-out {} --out {}",
            trace.display(),
            out.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let spans = hetsched_core::read_trace(&trace).unwrap();
        assert!(
            spans.iter().any(|s| s.name == "campaign"),
            "no campaign span"
        );
        assert!(spans.iter().any(|s| s.name == "cell"), "no cell spans");
        assert!(
            spans.iter().any(|s| s.name == "generation"),
            "no generation spans"
        );

        // Post-hoc analysis renders the report sections.
        let report = dir.join(format!("hetsched-cli-trace-report-{pid}.txt"));
        let report_cmd = format!(
            "trace {} --top 3 --out {}",
            trace.display(),
            report.display()
        );
        assert!(run(&argv(&report_cmd)).is_ok());
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("self (s)"), "{text}");
        assert!(text.contains("slowest cells"), "{text}");
        assert!(text.contains("critical path"), "{text}");

        // Chrome export is valid JSON with a traceEvents array.
        let chrome = dir.join(format!("hetsched-cli-trace-chrome-{pid}.json"));
        let chrome_cmd = format!(
            "trace {} --json --out {}",
            trace.display(),
            chrome.display()
        );
        assert!(run(&argv(&chrome_cmd)).is_ok());
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        assert_eq!(events.len(), spans.len());

        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&report);
        let _ = std::fs::remove_file(&chrome);
    }

    #[test]
    fn trace_command_requires_a_readable_path() {
        let err = run(&argv("trace")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(run(&argv("trace /nonexistent/spans.jsonl")).is_err());
    }

    #[test]
    fn heartbeat_flags_are_rejected_on_the_plain_run_path() {
        let err = run(&argv(
            "run --heartbeat-out hb.jsonl --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage());
        let err = run(&argv(
            "run --telemetry-out m.prom --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage());
    }

    #[test]
    fn cell_timeout_is_rejected_on_the_plain_run_path() {
        let err = run(&argv(
            "run --cell-timeout 5 --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage(), "{err}");
    }

    #[test]
    fn campaign_accepts_a_cell_timeout() {
        assert!(run(&argv(
            "run --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 1 --cell-timeout 600",
        ))
        .is_ok());
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn chaos_plan_is_rejected_without_the_chaos_feature() {
        let err = run(&argv(
            "run --chaos-plan manifest.append@1=io --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("chaos"), "{err}");
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn malformed_chaos_plans_are_usage_errors() {
        let err = run(&argv(
            "run --chaos-plan not-a-plan --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage(), "{err}");
    }

    #[test]
    fn metrics_out_is_rejected_on_the_campaign_path() {
        let err = run(&argv(
            "run --replicates 2 --metrics-out x.jsonl --tasks 15 --pop 8 --scale 0.00002",
        ))
        .unwrap_err();
        assert!(err.is_usage());
    }

    #[test]
    fn tiny_online_stream_completes() {
        let out = std::env::temp_dir().join(format!(
            "hetsched-cli-stream-out-{}.txt",
            std::process::id()
        ));
        let cmd = format!(
            "run --online --arrivals poisson:1.5 --horizon 20 --duration 60 \
             --set 1 --pop 8 --scale 0.00002 --out {}",
            out.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(text.contains("streaming run: poisson:1.5"), "{text}");
        assert!(text.contains("engine:nsga2"), "{text}");
        // Three horizons of 20 s over a 60 s stream; tick 2 plans at t=40.
        assert!(text.contains("\n2,40.00,"), "{text}");
        assert!(text.contains("committed:"), "{text}");
    }

    #[test]
    fn online_stream_with_policy_and_budget_completes() {
        assert!(run(&argv(
            "run --online --arrivals poisson:2,burst:3x30 --horizon 15 --duration 45 \
             --policy gupta --energy-budget 50000000 --set 1 --scale 0.00002"
        ))
        .is_ok());
    }

    #[test]
    fn online_stream_manifest_resumes_mid_stream() {
        let dir = std::env::temp_dir();
        let manifest = dir.join(format!(
            "hetsched-cli-stream-manifest-{}.jsonl",
            std::process::id()
        ));
        let out = dir.join(format!(
            "hetsched-cli-stream-resume-{}.txt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&manifest);
        let base = format!(
            "run --online --arrivals poisson:1.5 --horizon 20 --set 1 --pop 8 \
             --scale 0.00002 --manifest {} --out {}",
            manifest.display(),
            out.display()
        );
        assert!(run(&argv(&format!("{base} --duration 40"))).is_ok());
        assert!(run(&argv(&format!("{base} --duration 80"))).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_file(&out);
        assert!(text.contains("(resumed at tick 2)"), "{text}");
    }

    #[test]
    fn streaming_flags_require_the_online_arm() {
        for bad in [
            "run --horizon 20 --tasks 15 --pop 8 --scale 0.00002",
            "run --arrivals poisson:2 --tasks 15 --pop 8 --scale 0.00002",
            "run --online --pop 8 --scale 0.00002",
            "run --online --arrivals poisson:2 --replicates 2 --pop 8 --scale 0.00002",
        ] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(err.is_usage(), "{bad:?}: {err}");
        }
    }

    #[test]
    fn seeds_command_completes() {
        assert!(run(&argv("seeds --set 1 --tasks 25")).is_ok());
    }

    #[test]
    fn gantt_online_and_verify_synth_complete() {
        assert!(run(&argv("gantt --set 1 --tasks 15")).is_ok());
        assert!(run(&argv("online --set 1 --tasks 20")).is_ok());
        assert!(run(&argv("verify-synth --tasks 60")).is_ok());
    }

    #[test]
    fn attain_completes_on_mini_experiment() {
        assert!(run(&argv("attain --set 1 --tasks 15 --pop 8 --scale 0.00002")).is_ok());
        // --replicates steers the repetition count on attain too.
        assert!(run(&argv(
            "attain --set 1 --tasks 15 --pop 8 --scale 0.00002 --replicates 2"
        ))
        .is_ok());
    }

    #[test]
    fn verify_suite_passes_at_tiny_scale() {
        assert!(run(&argv("verify --set 1 --scale 0.0002")).is_ok());
    }

    #[test]
    fn figure_one_and_two_print() {
        assert!(run(&argv("figure 1")).is_ok());
        assert!(run(&argv("figure 2")).is_ok());
    }

    #[test]
    fn run_with_metrics_out_writes_one_record_per_generation() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("hetsched-cli-metrics-{}.jsonl", std::process::id()));
        let report = dir.join(format!("hetsched-cli-report-{}.txt", std::process::id()));
        let cmd = format!(
            "run --set 1 --tasks 20 --pop 8 --scale 0.00002 --log-level error \
             --metrics-out {} --out {}",
            journal.display(),
            report.display()
        );
        assert!(run(&argv(&cmd)).is_ok());
        let text = std::fs::read_to_string(&journal).unwrap();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&report);
        let cfg = hetsched_core::ExperimentConfig::scaled(hetsched_core::DatasetId::One, 0.00002);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), cfg.generations() * cfg.seeds.len());
        for line in lines {
            serde_json::from_str::<serde_json::Value>(line)
                .unwrap_or_else(|e| panic!("bad journal line {line:?}: {e}"));
        }
    }
}
