//! Command implementations.

use crate::error::CliError;
use crate::options::Options;
use hetsched_analysis::export::{series_to_csv, series_to_json};
use hetsched_core::figures;
use hetsched_core::{
    Campaign, CampaignObserver, CampaignSpec, DatasetId, ExperimentConfig, Framework, Heartbeat,
    HeartbeatTicker, MetricsRegistry, TelemetryObserver,
};
use hetsched_data::{MachineTypeId, TaskTypeId};
use hetsched_heuristics::SeedKind;
use hetsched_sim::Evaluator;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn dataset_id(set: u8) -> DatasetId {
    match set {
        1 => DatasetId::One,
        2 => DatasetId::Two,
        _ => DatasetId::Three,
    }
}

fn config_from(options: &Options) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::scaled(dataset_id(options.set), options.scale);
    if let Some(tasks) = options.tasks {
        cfg.tasks = tasks;
    }
    if let Some(duration) = options.duration {
        cfg.duration = duration;
    }
    cfg.population = options.population;
    cfg.rng_seed = options.rng_seed;
    cfg.algorithm = options.algorithm;
    cfg
}

/// `hetsched dataset`: print the system's machines, task types, and the
/// ETC/EPC matrices.
pub fn dataset(options: &Options) -> Result<(), CliError> {
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let sys = fw.system();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "data set {} — {} machines over {} machine types, {} task types",
        options.set,
        sys.machine_count(),
        sys.machine_type_count(),
        sys.task_type_count()
    );
    let _ = writeln!(out, "\nmachine types (Table I / III):");
    for m in 0..sys.machine_type_count() {
        let mt = MachineTypeId(m as u16);
        let count = sys.inventory().count(mt);
        let _ = writeln!(
            out,
            "  {:>2}  {:<32} × {}",
            m,
            sys.machine_type_name(mt),
            count
        );
    }
    let _ = writeln!(out, "\ntask types (Table II + synthetic):");
    for t in 0..sys.task_type_count() {
        let tt = TaskTypeId(t as u16);
        let row_avg = sys.etc().0.row_average(tt).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  {:>2}  {:<32} row-average ETC {:.1} s",
            t,
            sys.task_type_name(tt),
            row_avg
        );
    }
    options.emit(&out)
}

/// `hetsched figure N`: regenerate one figure's data.
pub fn figure(which: u8, options: &Options) -> Result<(), CliError> {
    match which {
        1 => {
            let mut out = String::from("time_s,utility\n");
            for (t, u) in figures::fig1_curve(200) {
                let _ = writeln!(out, "{t:.2},{u:.4}");
            }
            options.emit(&out)
        }
        2 => {
            let mut out = String::from("label,energy,utility\n");
            for (label, e, u) in figures::fig2_points() {
                let _ = writeln!(out, "{label},{e},{u}");
            }
            options.emit(&out)
        }
        3 | 4 | 6 => {
            let result = match which {
                3 => figures::fig3(options.scale),
                4 => figures::fig4(options.scale),
                _ => figures::fig6(options.scale),
            };
            let (_, series) = result?;
            let rendered = if options.json {
                series_to_json(&series)?
            } else {
                series_to_csv(&series)
            };
            // When writing to a file, also drop a gnuplot script next to it
            // so `gnuplot figN.gp` reproduces the subplot layout directly.
            if let Some(path) = &options.out {
                let gp = hetsched_analysis::export::gnuplot_script(
                    &series,
                    path,
                    &format!("figure{which}"),
                );
                let gp_path = format!("{path}.gp");
                std::fs::write(&gp_path, gp).map_err(|e| CliError::io(&gp_path, e))?;
            }
            options.emit(&rendered)
        }
        5 => {
            let (report, _) = figures::fig4(options.scale)?;
            let data = figures::fig5(&report)
                .ok_or_else(|| CliError::Failed("figure 5: empty front".into()))?;
            let mut out = String::from("subplot,x,y\n");
            for (e, u) in &data.front {
                let _ = writeln!(out, "A,{:.6},{:.6}", e / 1.0e6, u);
            }
            for (u, upe) in &data.upe_vs_utility {
                let _ = writeln!(out, "B,{u:.6},{upe:.9}");
            }
            for (e, upe) in &data.upe_vs_energy {
                let _ = writeln!(out, "C,{:.6},{:.9}", e / 1.0e6, upe);
            }
            let _ = writeln!(out, "peak,{:.6},{:.6}", data.peak.1 / 1.0e6, data.peak.0);
            options.emit(&out)
        }
        other => Err(CliError::Usage(format!(
            "unknown figure {other} (valid: 1-6)"
        ))),
    }
}

/// `hetsched run`: full multi-population experiment; prints a per-seed
/// summary plus the combined front and its UPE peak.
///
/// With `--replicates` or `--manifest` the experiment runs as a
/// [`Campaign`]: one cell per (replicate, seed kind), executed in
/// parallel, checkpointed to the manifest (when given) so a killed run
/// resumes where it left off.
pub fn run_experiment(options: &Options) -> Result<(), CliError> {
    if options.online {
        return run_online_stream(options);
    }
    if options.horizon.is_some() || options.arrivals.is_some() {
        return Err(CliError::Usage(
            "--horizon/--arrivals require --online".into(),
        ));
    }
    if options.replicates.is_some() || options.manifest.is_some() {
        return run_campaign(options);
    }
    if options.heartbeat_out.is_some() || options.telemetry_out.is_some() {
        return Err(CliError::Usage(
            "--heartbeat-out/--telemetry-out require a campaign \
             (add --replicates or --manifest)"
                .into(),
        ));
    }
    if options.cell_timeout.is_some() {
        return Err(CliError::Usage(
            "--cell-timeout requires a campaign (add --replicates or --manifest)".into(),
        ));
    }
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let journal = match &options.metrics_out {
        Some(path) => {
            Some(hetsched_core::RunJournal::create(path).map_err(|e| CliError::io(path, e))?)
        }
        None => None,
    };
    let report = fw.run_with_journal(journal.as_ref());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "data set {} — {} tasks, population {}, snapshots {:?}, engine {}",
        options.set,
        fw.config().tasks,
        fw.config().population,
        fw.config().snapshots,
        fw.config().algorithm
    );
    summarise_report(&mut out, &report)?;
    options.emit(&out)
}

/// The `--online` arm of `hetsched run`: a rolling-horizon stream. A
/// seeded arrival process feeds a [`hetsched_core::StreamRunner`]; every
/// `--horizon` seconds the pending window is re-optimized — by the
/// configured engine warm-started from the previous front (default), or
/// by a per-arrival `--policy` — and the committed schedule is printed
/// per tick. `--manifest PATH` makes the stream durable: feeds and
/// commits are journalled, and rerunning the same command resumes
/// mid-stream instead of starting over.
fn run_online_stream(options: &Options) -> Result<(), CliError> {
    use hetsched_core::{EngineStreamSpec, OptimizerSpec, StreamConfig, StreamRunner};
    use hetsched_sim::HorizonConfig;
    use hetsched_workload::{ArrivalSpec, ArrivalStream, TufPolicy};

    if options.replicates.is_some() {
        return Err(CliError::Usage(
            "--replicates is not supported with --online".into(),
        ));
    }
    let Some(arrivals_spec) = &options.arrivals else {
        return Err(CliError::Usage(
            "--online requires --arrivals (e.g. --arrivals poisson:2.5)".into(),
        ));
    };
    let spec: ArrivalSpec = arrivals_spec
        .parse()
        .map_err(|e| CliError::Usage(format!("--arrivals: {e}")))?;
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let system = fw.system().clone();
    let horizon = HorizonConfig {
        horizon: options.horizon.unwrap_or(60.0),
        energy_budget: options.energy_budget.unwrap_or(f64::INFINITY),
    };
    let optimizer = match options.policy {
        Some(policy) => OptimizerSpec::Policy(policy),
        None => OptimizerSpec::Engine(EngineStreamSpec {
            engine: hetsched_core::EngineConfig::builder()
                .algorithm(cfg.algorithm)
                .population(cfg.population)
                .mutation_rate(cfg.mutation_rate)
                .generations(cfg.generations())
                .parallel(cfg.parallel)
                .build()
                .map_err(|e| CliError::Failed(format!("engine config: {e}")))?,
            seed_kind: SeedKind::MinMinCompletionTime,
            rng_seed: cfg.rng_seed,
            stream: 0,
            warm_start: !options.cold_start,
        }),
    };
    let stream_config = StreamConfig { horizon, optimizer };
    let mut runner = match &options.manifest {
        Some(path) => StreamRunner::resume(system, stream_config, path)?,
        None => StreamRunner::new(system, stream_config)?,
    };
    if let Some(path) = &options.metrics_out {
        let journal = hetsched_core::RunJournal::create(path).map_err(|e| CliError::io(path, e))?;
        runner = runner.with_journal(journal);
    }
    let mut arrivals = ArrivalStream::new(
        spec,
        cfg.rng_seed,
        runner.system().task_type_count(),
        TufPolicy::essc_default(),
    );
    let resumed_at = runner.scheduler().ticks();
    let records = runner.drive(&mut arrivals, cfg.duration)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "streaming run: {} over {:.0}s, horizon {:.0}s, {}{}",
        arrivals_spec,
        cfg.duration,
        runner.config().horizon.horizon,
        runner.header().optimizer,
        if resumed_at > 0 {
            format!(" (resumed at tick {resumed_at})")
        } else {
            String::new()
        }
    );
    let _ = writeln!(
        out,
        "tick,now_s,tasks,frozen,rejected,utility,energy_megajoules,makespan_s"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "{},{:.2},{},{},{},{:.3},{:.6},{:.2}",
            r.tick,
            r.now,
            r.tasks,
            r.frozen,
            r.rejected.len(),
            r.utility,
            r.energy / 1e6,
            r.makespan
        );
    }
    let sched = runner.scheduler();
    if let Some(last) = sched.records().last() {
        let _ = writeln!(
            out,
            "committed: {} tasks ({} rejected), utility {:.3}, energy {:.6} MJ, \
             throughput {:.2} tasks/s",
            last.tasks,
            sched.rejected().len(),
            last.utility,
            last.energy / 1e6,
            last.tasks as f64 / sched.now().max(f64::MIN_POSITIVE)
        );
    }
    options.emit(&out)
}

/// Builds the campaign for both the `--replicates`/`--manifest` arm of
/// `hetsched run` and `hetsched work`. Both commands must construct it
/// identically: the campaign fingerprint is derived from the spec, and a
/// worker whose spec differs from the manifest owner's is refused.
fn build_campaign(options: &Options) -> Campaign {
    let cfg = config_from(options);
    let mut spec = CampaignSpec::single(&cfg);
    spec.replicates = options.replicates.unwrap_or(1);
    let mut campaign = Campaign::new(spec);
    if let Some(timeout) = options.cell_timeout {
        campaign = campaign.cell_timeout(timeout);
    }
    if options.requeue_quarantined {
        campaign = campaign.requeue_quarantined(true);
    }
    campaign
}

/// Telemetry wiring shared by the campaign arm of `run` and by `work`:
/// one shared observer feeds the registry; the heartbeat appends
/// progress lines (a ticker keeps them coming while cells run) and the
/// registry is exported as Prometheus text after the run.
fn campaign_telemetry(options: &Options) -> Result<Option<Arc<TelemetryObserver>>, CliError> {
    match (&options.heartbeat_out, &options.telemetry_out) {
        (None, None) => Ok(None),
        (heartbeat_out, _) => {
            let mut observer = TelemetryObserver::new(Arc::new(MetricsRegistry::new()));
            if let Some(path) = heartbeat_out {
                let every = Duration::from_secs_f64(options.heartbeat_every);
                let heartbeat =
                    Heartbeat::create_durable(path, every).map_err(|e| CliError::io(path, e))?;
                observer = observer.with_heartbeat(heartbeat);
            }
            Ok(Some(Arc::new(observer)))
        }
    }
}

/// `--reports-out`: the replicate reports as one canonical JSON array.
/// Reports are assembled purely from the manifest's population runs —
/// never from worker identity, lease epochs, or timings — so every
/// process that merged the same campaign writes identical bytes. The CI
/// distributed-smoke job `cmp`s these files to prove the merge.
fn write_reports(path: &str, reports: &[hetsched_core::CampaignReport]) -> Result<(), CliError> {
    let json = serde_json::to_string(reports)
        .map_err(|e| CliError::Failed(format!("serialising reports: {e}")))?;
    hetsched_core::durable_write(path, json).map_err(|e| CliError::io(path, e))
}

/// The `--replicates`/`--manifest` arm of `hetsched run`.
fn run_campaign(options: &Options) -> Result<(), CliError> {
    if options.metrics_out.is_some() {
        return Err(CliError::Usage(
            "--metrics-out is not supported together with --replicates/--manifest".into(),
        ));
    }
    let cfg = config_from(options);
    let mut campaign = build_campaign(options);
    let telemetry = campaign_telemetry(options)?;
    if let Some(observer) = &telemetry {
        campaign = campaign.with_observer(Arc::clone(observer) as Arc<dyn CampaignObserver>);
    }
    let ticker = match &telemetry {
        Some(observer) if options.heartbeat_out.is_some() => {
            Some(HeartbeatTicker::spawn(Arc::clone(observer)))
        }
        _ => None,
    };

    let outcome = campaign.run(options.manifest.as_deref().map(Path::new))?;
    drop(ticker);
    if let (Some(observer), Some(path)) = (&telemetry, &options.telemetry_out) {
        hetsched_core::durable_write(path, observer.registry().prometheus())
            .map_err(|e| CliError::io(path, e))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: data set {}, engine {}, {} replicate(s) × {} seed(s) — \
         {} executed, {} replayed from manifest",
        options.set,
        cfg.algorithm,
        options.replicates.unwrap_or(1),
        cfg.seeds.len(),
        outcome.executed,
        outcome.replayed
    );
    for report in &outcome.reports {
        let _ = writeln!(out, "\nreplicate {}:", report.replicate);
        summarise_report(&mut out, &report.report)?;
    }
    for record in &outcome.failed {
        let verdict = match record.outcome {
            hetsched_core::CellOutcome::TimedOut => "TIMED OUT",
            _ => "FAILED",
        };
        let _ = writeln!(
            out,
            "\n{verdict} {} after {} attempt(s): {}",
            record.cell,
            record.attempts,
            record.error.as_deref().unwrap_or("unknown error")
        );
    }
    if let Some(path) = &options.reports_out {
        write_reports(path, &outcome.reports)?;
    }
    options.emit(&out)?;
    if outcome.is_complete() {
        Ok(())
    } else {
        Err(CliError::Failed(format!(
            "campaign incomplete: {} cell(s) failed, {} skipped",
            outcome.failed.len(),
            outcome.skipped.len()
        )))
    }
}

/// Default `hetsched work` identity: `host:pid`. The hostname
/// distinguishes machines sharing a manifest over a network filesystem;
/// the pid distinguishes workers on one machine.
fn default_worker_id() -> String {
    let host = std::env::var("HOSTNAME")
        .ok()
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "host".to_string());
    format!("{host}:{}", std::process::id())
}

/// `hetsched work`: join a campaign as one worker process. Workers
/// coordinate purely through the shared `--manifest` file: each leases
/// an unowned (or expired) cell, runs it through the same cell machinery
/// as `run`, appends the result under its lease epoch, and releases.
/// Start any number of workers concurrently, or late as failover
/// replacements — every one of them merges the manifest to the same
/// byte-identical reports a single-process `run` would produce.
pub fn work(options: &Options) -> Result<(), CliError> {
    let Some(manifest) = &options.manifest else {
        return Err(CliError::Usage(
            "work requires --manifest PATH (the shared campaign manifest)".into(),
        ));
    };
    if options.online {
        return Err(CliError::Usage(
            "--online is not supported with work".into(),
        ));
    }
    if options.metrics_out.is_some() {
        return Err(CliError::Usage(
            "--metrics-out is not supported with work".into(),
        ));
    }
    let cfg = config_from(options);
    let mut campaign = build_campaign(options);
    let telemetry = campaign_telemetry(options)?;
    if let Some(observer) = &telemetry {
        campaign = campaign.with_observer(Arc::clone(observer) as Arc<dyn CampaignObserver>);
    }
    let ticker = match &telemetry {
        Some(observer) if options.heartbeat_out.is_some() => {
            Some(HeartbeatTicker::spawn(Arc::clone(observer)))
        }
        _ => None,
    };
    let worker_id = options.worker_id.clone().unwrap_or_else(default_worker_id);
    let mut worker = hetsched_core::Worker::new(campaign, &worker_id);
    if let Some(ttl) = options.lease_ttl {
        worker = worker.lease_ttl(Duration::from_secs_f64(ttl));
    }
    let outcome = worker.run(Path::new(manifest))?;
    drop(ticker);
    if let (Some(observer), Some(path)) = (&telemetry, &options.telemetry_out) {
        hetsched_core::durable_write(path, observer.registry().prometheus())
            .map_err(|e| CliError::io(path, e))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "worker {}: data set {}, engine {} — {} cell(s) executed \
         ({} stolen), {} fenced, {} merged from peers",
        worker_id,
        options.set,
        cfg.algorithm,
        outcome.executed,
        outcome.stolen,
        outcome.fenced,
        outcome.outcome.replayed
    );
    for report in &outcome.outcome.reports {
        let _ = writeln!(out, "\nreplicate {}:", report.replicate);
        summarise_report(&mut out, &report.report)?;
    }
    for record in &outcome.outcome.failed {
        let verdict = match record.outcome {
            hetsched_core::CellOutcome::TimedOut => "TIMED OUT",
            _ => "FAILED",
        };
        let _ = writeln!(
            out,
            "\n{verdict} {} after {} attempt(s): {}",
            record.cell,
            record.attempts,
            record.error.as_deref().unwrap_or("unknown error")
        );
    }
    if let Some(path) = &options.reports_out {
        write_reports(path, &outcome.outcome.reports)?;
    }
    options.emit(&out)?;
    if outcome.outcome.is_complete() {
        Ok(())
    } else {
        Err(CliError::Failed(format!(
            "campaign incomplete: {} cell(s) failed, {} skipped",
            outcome.outcome.failed.len(),
            outcome.outcome.skipped.len()
        )))
    }
}

/// Appends the per-seed front table, combined front, and UPE peak of one
/// report to `out` (shared by the plain and campaign arms of `run`).
///
/// # Errors
///
/// [`CliError::Failed`] when a population's final front is empty — a
/// degenerate run the summary cannot describe (and previously a panic).
fn summarise_report(
    out: &mut String,
    report: &hetsched_core::AnalysisReport,
) -> Result<(), CliError> {
    for run in &report.runs {
        let front = run.final_front();
        let (Some(min_e), Some(max_u)) = (front.min_energy(), front.max_utility()) else {
            return Err(CliError::Failed(format!(
                "front is empty for seed {}",
                run.seed.label()
            )));
        };
        let _ = writeln!(
            out,
            "  {:<24} front {:>3} pts   energy [{:.3}, {:.3}] MJ   utility [{:.1}, {:.1}]",
            run.seed.label(),
            front.len(),
            min_e.energy / 1e6,
            max_u.energy / 1e6,
            min_e.utility,
            max_u.utility
        );
    }
    let combined = report.combined_front();
    let _ = writeln!(out, "combined front: {} points", combined.len());
    if let Some(upe) = report.upe() {
        let _ = writeln!(
            out,
            "max utility-per-energy: {:.3} utility/MJ at utility {:.1}, energy {:.3} MJ",
            upe.peak_upe * 1e6,
            upe.peak.utility,
            upe.peak.energy / 1e6
        );
    }
    Ok(())
}

/// `hetsched gantt`: render the Min-Min allocation of the data set as an
/// ASCII Gantt chart (a quick visual sanity check of the simulator).
pub fn gantt(options: &Options) -> Result<(), CliError> {
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let alloc = hetsched_heuristics::min_min_completion_time(fw.system(), fw.trace());
    let detailed = hetsched_sim::DetailedOutcome::evaluate(fw.system(), fw.trace(), &alloc)?;
    let mut out = hetsched_sim::render_gantt(fw.system(), &detailed, 80);
    let _ = writeln!(
        out,
        "min-min schedule: utility {:.1}, energy {:.3} MJ, makespan {:.1} s",
        detailed.utility,
        detailed.energy / 1e6,
        detailed.makespan
    );
    options.emit(&out)
}

/// `hetsched online`: sweep energy budgets through the online greedy
/// scheduler (the framework's downstream consumer) and print the
/// utility-vs-budget curve.
pub fn online(options: &Options) -> Result<(), CliError> {
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let unconstrained = hetsched_sim::schedule_online(
        fw.system(),
        fw.trace(),
        &hetsched_sim::OnlineConfig::default(),
    );
    let mut out = String::from("budget_fraction,energy_megajoules,utility,accepted,rejected\n");
    for pct in [100u32, 90, 75, 60, 50, 40, 30, 20, 10] {
        let budget = unconstrained.energy * pct as f64 / 100.0;
        let o = hetsched_sim::schedule_online(
            fw.system(),
            fw.trace(),
            &hetsched_sim::OnlineConfig {
                energy_budget: budget,
                drop_threshold: 0.0,
            },
        );
        let _ = writeln!(
            out,
            "{:.2},{:.6},{:.3},{},{}",
            pct as f64 / 100.0,
            o.energy / 1e6,
            o.utility,
            o.accepted,
            o.rejected.len()
        );
    }
    options.emit(&out)
}

/// `hetsched verify-synth`: generate a large synthetic ETC matrix and
/// report how well the §III-D2 pipeline preserved the real data's
/// heterogeneity (moments + Kolmogorov-Smirnov distance of the ratio
/// distributions).
pub fn verify_synth(options: &Options) -> Result<(), CliError> {
    use hetsched_data::{real_etc, TypeMatrix};
    use rand::SeedableRng;
    let n = options.tasks.unwrap_or(500);
    let mut rng = rand::rngs::StdRng::seed_from_u64(options.rng_seed);
    let sys = hetsched_synth::DatasetBuilder::from_real()
        .new_task_types(n)
        .build(&mut rng)?;
    // Synthetic rows only, general columns only.
    let mut synth = TypeMatrix::filled(n, 9, 0.0);
    for t in 0..n {
        for m in 0..9 {
            synth.set(
                TaskTypeId(t as u16),
                MachineTypeId(m as u16),
                sys.etc()
                    .time(TaskTypeId((t + 5) as u16), MachineTypeId(m as u16)),
            );
        }
    }
    let real = real_etc().0;
    let report = hetsched_synth::HeterogeneityReport::compare(&real, &synth)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "heterogeneity preservation report ({n} synthetic task types)"
    );
    let s = &report.source_row_avg;
    let g = &report.generated_row_avg;
    let _ = writeln!(
        out,
        "row averages   real: mean {:.1}  CV {:.3}  skew {:+.3}  kurt {:+.3}",
        s.mean,
        s.coefficient_of_variation(),
        s.skewness,
        s.kurtosis
    );
    let _ = writeln!(
        out,
        "              synth: mean {:.1}  CV {:.3}  skew {:+.3}  kurt {:+.3}",
        g.mean,
        g.coefficient_of_variation(),
        g.skewness,
        g.kurtosis
    );
    let _ = writeln!(
        out,
        "worst per-machine ratio-moment discrepancy: {:.3}",
        report.worst_ratio_discrepancy()
    );
    // KS distance between real and synthetic ratio samples, per machine.
    let real_ratio = hetsched_synth::ratios::ratio_matrix(&real)?;
    let synth_ratio = hetsched_synth::ratios::ratio_matrix(&synth)?;
    let _ = writeln!(out, "per-machine KS distance (real vs synthetic ratios):");
    for m in 0..9u16 {
        let a: Vec<f64> = real_ratio
            .column(MachineTypeId(m))
            .filter(|v| v.is_finite())
            .collect();
        let b: Vec<f64> = synth_ratio
            .column(MachineTypeId(m))
            .filter(|v| v.is_finite())
            .collect();
        let d = hetsched_stats::ks_statistic(&a, &b)?;
        let crit = hetsched_stats::ks_critical_value(a.len(), b.len(), 0.05)?;
        let verdict = if d <= crit { "ok" } else { "differs" };
        let _ = writeln!(
            out,
            "  machine {m}: D = {d:.3} (crit@5% {crit:.3}) {verdict}"
        );
    }
    options.emit(&out)
}

/// `hetsched report`: with a path argument, summarise a finished run
/// without re-running anything — a campaign manifest gets a per-cell
/// status table plus per-population convergence, a run journal gets the
/// per-population convergence and phase-time breakdown. Without a path,
/// run the whole reproduction suite (figures 3-6, the seeding table, and
/// the claim checks) at the given scale and emit a self-contained
/// markdown report.
pub fn report(options: &Options) -> Result<(), CliError> {
    use hetsched_core::suite::verify_dataset;
    if let Some(path) = options.positional.first() {
        let inspection = hetsched_core::inspect_path(Path::new(path))?;
        return options.emit(&inspection.render());
    }
    let mut out = String::new();
    let _ = writeln!(out, "# hetsched reproduction report\n");
    let _ = writeln!(
        out,
        "iteration scale: {} of the paper's schedule; master seed {:#x}\n",
        options.scale, options.rng_seed
    );

    for set in 1..=3u8 {
        let dataset = dataset_id(set);
        let _ = writeln!(out, "## data set {set}\n");
        // Seeding heuristics table.
        let cfg = {
            let mut cfg = ExperimentConfig::scaled(dataset, options.scale);
            cfg.rng_seed = options.rng_seed;
            cfg
        };
        let fw = Framework::new(&cfg)?;
        let mut ev = Evaluator::new(fw.system(), fw.trace());
        let _ = writeln!(out, "| heuristic | utility | energy (MJ) | makespan (s) |");
        let _ = writeln!(out, "|---|---|---|---|");
        for kind in SeedKind::ALL {
            if let Some(alloc) = kind.seeds(fw.system(), fw.trace()).first() {
                let o = ev.evaluate(alloc);
                let _ = writeln!(
                    out,
                    "| {} | {:.1} | {:.3} | {:.1} |",
                    kind.label(),
                    o.utility,
                    o.energy / 1e6,
                    o.makespan
                );
            }
        }
        let _ = writeln!(
            out,
            "| *bounds* | {:.1} | {:.3} | |\n",
            ev.max_possible_utility(),
            ev.min_possible_energy() / 1e6
        );

        // Claim checks (runs the full multi-population experiment).
        let verdict = verify_dataset(dataset, options.scale)?;
        let _ = writeln!(out, "claim checks:\n");
        for c in &verdict.checks {
            let _ = writeln!(
                out,
                "- **{}** {} — {}",
                if c.passed { "pass" } else { "FAIL" },
                c.name,
                c.evidence
            );
        }
        let _ = writeln!(out);
    }
    options.emit(&out)
}

/// `hetsched trace`: summarise a span trace (the JSONL `--trace-out`
/// writes, or a serve job's trace file) without re-running anything:
/// per-phase self-time breakdown, the `--top` slowest cells, the critical
/// path through the longest trace, and wall-clock vs summed cell time.
/// With `--json` the spans are exported as Chrome trace-event JSON
/// instead, loadable in Perfetto or `chrome://tracing`.
pub fn trace(options: &Options) -> Result<(), CliError> {
    let Some(path) = options.positional.first() else {
        return Err(CliError::Usage(
            "trace requires a span-trace path (the JSONL written by --trace-out)".into(),
        ));
    };
    let spans = hetsched_core::read_trace(Path::new(path))?;
    if options.json {
        let chrome = hetsched_core::chrome_trace(&spans);
        options.emit(&serde_json::to_string(&chrome)?)
    } else {
        let analysis = hetsched_core::TraceAnalysis::from_records(&spans, options.top);
        options.emit(&analysis.render())
    }
}

/// `hetsched attain`: run the experiment `--replicates` times (default 5)
/// and print each seed's median attainment curve — the robust across-run
/// view of the trade-off.
pub fn attain(options: &Options) -> Result<(), CliError> {
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let replicates = options.replicates.unwrap_or(5);
    let summaries = fw.run_replicated(replicates)?;
    let mut out = String::from("seed,energy_megajoules,median_utility\n");
    for (seed, summary) in &summaries {
        for (e, u) in summary.median_curve(12) {
            let _ = writeln!(
                out,
                "{},{:.6},{}",
                seed.label(),
                e / 1e6,
                u.map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "NA".to_string())
            );
        }
    }
    options.emit(&out)
}

/// `hetsched verify`: run the reproduction suite's claim checks for the
/// selected data set at the given scale.
pub fn verify(options: &Options) -> Result<(), CliError> {
    let dataset = dataset_id(options.set);
    let verdict = hetsched_core::verify_dataset(dataset, options.scale)?;
    let mut out = verdict.to_string();
    out.push_str(if verdict.all_passed() {
        "all claims supported\n"
    } else {
        "SOME CLAIMS FAILED\n"
    });
    options.emit(&out)?;
    if verdict.all_passed() {
        Ok(())
    } else {
        Err(CliError::Failed("claim checks failed".into()))
    }
}

/// `hetsched seeds`: evaluate the four greedy heuristics on the data set.
pub fn seeds(options: &Options) -> Result<(), CliError> {
    let cfg = config_from(options);
    let fw = Framework::new(&cfg)?;
    let mut ev = Evaluator::new(fw.system(), fw.trace());
    let mut out = String::from("heuristic,utility,energy_megajoules,makespan_s\n");
    for kind in SeedKind::ALL {
        let seeds = kind.seeds(fw.system(), fw.trace());
        let Some(alloc) = seeds.first() else { continue };
        let o = ev.evaluate(alloc);
        let _ = writeln!(
            out,
            "{},{:.3},{:.6},{:.1}",
            kind.label(),
            o.utility,
            o.energy / 1e6,
            o.makespan
        );
    }
    let _ = writeln!(
        out,
        "bounds,{:.3},{:.6},",
        ev.max_possible_utility(),
        ev.min_possible_energy() / 1e6
    );
    options.emit(&out)
}

/// `hetsched serve`: run the long-lived scheduler daemon until SIGTERM,
/// SIGINT, or ctrl-c. Campaign jobs arrive over HTTP (see the
/// `hetsched-serve` crate docs for the endpoint table) and run on a
/// shared worker pool with per-job manifests under `--state-dir`.
pub fn serve(options: &Options) -> Result<(), CliError> {
    let state_dir = options
        .state_dir
        .clone()
        .unwrap_or_else(|| "hetsched-state".to_string());
    let mut config = hetsched_serve::ServeConfig::new(&state_dir);
    config.workers = options.workers;
    config.cell_timeout = options.cell_timeout;
    let service = hetsched_serve::SchedulerService::start(config)?;
    let server = hetsched_serve::Server::bind(&options.addr)
        .map_err(|e| hetsched_core::CoreError::Io(format!("bind {}: {e}", options.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| hetsched_core::CoreError::Io(format!("local addr: {e}")))?;
    // The probe/scrape side parses this line to learn the bound port
    // when --addr used port 0.
    println!(
        "hetsched serve listening on {addr} (state-dir {state_dir}, workers {})",
        options.workers
    );
    let shutdown = hetsched_core::CancelToken::new();
    watch_signals(shutdown.clone());
    server
        .run(&service, &shutdown)
        .map_err(|e| hetsched_core::CoreError::Io(format!("serve loop: {e}")))?;
    eprintln!("hetsched serve: shutting down");
    service.shutdown();
    Ok(())
}

/// Flips the daemon's shutdown token when SIGINT or SIGTERM arrives.
/// The handler only stores into an atomic; a watcher thread does the
/// actual cancellation. Registered through the C `signal` entry point
/// std already links — the workspace is offline, so no libc crate.
#[cfg(unix)]
fn watch_signals(shutdown: hetsched_core::CancelToken) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    std::thread::spawn(move || loop {
        if REQUESTED.load(Ordering::SeqCst) {
            shutdown.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

/// Non-unix builds run until the process is killed externally.
#[cfg(not(unix))]
fn watch_signals(_shutdown: hetsched_core::CancelToken) {}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::{AnalysisReport, PopulationRun};

    #[test]
    fn summarise_report_fails_cleanly_on_an_empty_front() {
        // A degenerate report whose population produced no front at all
        // used to panic on `min_energy().unwrap()`; it must surface as a
        // runtime failure (exit code 1) instead.
        use hetsched_analysis::ParetoFront;
        let empty: [(f64, f64); 0] = [];
        let report = AnalysisReport {
            runs: vec![PopulationRun {
                seed: SeedKind::Random,
                fronts: vec![(2, ParetoFront::from_points(empty))],
            }],
            snapshots: vec![2],
        };
        let mut out = String::new();
        let err = summarise_report(&mut out, &report).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(!err.is_usage());
        assert!(
            err.to_string().contains("front is empty for seed random"),
            "{err}"
        );
    }

    #[test]
    fn summarise_report_renders_a_populated_front() {
        use hetsched_analysis::ParetoFront;
        let report = AnalysisReport {
            runs: vec![PopulationRun {
                seed: SeedKind::Random,
                fronts: vec![(2, ParetoFront::from_points([(1.5e6, 10.0), (2.0e6, 20.0)]))],
            }],
            snapshots: vec![2],
        };
        let mut out = String::new();
        summarise_report(&mut out, &report).unwrap();
        assert!(out.contains("random"), "{out}");
        assert!(out.contains("combined front"), "{out}");
    }
}
