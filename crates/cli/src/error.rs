//! The CLI's error type.
//!
//! Every command returns [`CliError`] instead of a stringly error so that
//! `main` can (a) print the full cause chain — the variant's own message
//! first, then each `source()` below it — and (b) map the failure family
//! to a conventional exit code: `2` for usage errors, `1` for everything
//! else.

use hetsched_core::CoreError;
use hetsched_sim::SimError;
use hetsched_stats::StatsError;
use hetsched_synth::SynthError;
use std::fmt;

/// Everything a `hetsched` command can fail with.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong: unknown command or flag, missing
    /// or malformed value. Exits with code 2.
    Usage(String),
    /// The experiment framework failed (invalid configuration, data-set
    /// synthesis, campaign manifest, …).
    Core(CoreError),
    /// Stand-alone synthetic data generation failed (`verify-synth`).
    Synth(SynthError),
    /// A statistical routine rejected its input.
    Stats(StatsError),
    /// The simulator rejected an allocation.
    Sim(SimError),
    /// JSON rendering or parsing failed.
    Render(serde_json::Error),
    /// Writing an output file failed.
    Io {
        /// The path that could not be written.
        path: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A command ran to completion but its checks did not all pass
    /// (`verify`), or a campaign left cells failed or unexecuted (`run`).
    Failed(String),
}

impl CliError {
    /// Convenience constructor for [`CliError::Io`].
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this error maps to: 2 for usage errors
    /// (mirroring `EX_USAGE`-style conventions), 1 otherwise.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }

    /// Whether this is a command-line usage error (worth pointing the
    /// user at `hetsched help`).
    pub fn is_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(what) => write!(f, "{what}"),
            CliError::Core(_) => write!(f, "experiment failed"),
            CliError::Synth(_) => write!(f, "synthetic data generation failed"),
            CliError::Stats(_) => write!(f, "statistical analysis failed"),
            CliError::Sim(_) => write!(f, "simulation failed"),
            CliError::Render(_) => write!(f, "cannot render JSON"),
            CliError::Io { path, .. } => write!(f, "cannot write {path}"),
            CliError::Failed(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Core(e) => Some(e),
            CliError::Synth(e) => Some(e),
            CliError::Stats(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Render(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            CliError::Usage(_) | CliError::Failed(_) => None,
        }
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<SynthError> for CliError {
    fn from(e: SynthError) -> Self {
        CliError::Synth(e)
    }
}

impl From<StatsError> for CliError {
    fn from(e: StatsError) -> Self {
        CliError::Stats(e)
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Render(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn usage_errors_exit_2_everything_else_1() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert!(CliError::Usage("bad flag".into()).is_usage());
        let core: CliError = CoreError::InvalidConfig("tasks must be > 0").into();
        assert_eq!(core.exit_code(), 1);
        assert!(!core.is_usage());
        assert_eq!(
            CliError::Failed("claim checks failed".into()).exit_code(),
            1
        );
    }

    #[test]
    fn cause_chain_is_reachable_through_source() {
        let err: CliError = CoreError::InvalidConfig("population must be >= 2").into();
        let source = err.source().expect("core errors carry a source");
        assert!(source.to_string().contains("population"));

        let io = CliError::io(
            "/nope/report.csv",
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing dir"),
        );
        assert_eq!(io.to_string(), "cannot write /nope/report.csv");
        assert!(io.source().unwrap().to_string().contains("missing dir"));

        assert!(CliError::Usage("x".into()).source().is_none());
    }
}
