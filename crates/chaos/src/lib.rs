#![warn(missing_docs)]

//! Deterministic fault injection for the hetsched executor stack.
//!
//! The crate is a process-global registry of named **fault points** —
//! call sites like `"campaign.cell.run"` or `"manifest.append"` threaded
//! through the campaign, IO, and evaluator layers — driven by a
//! [`FaultPlan`]: an ordered list of [`FaultSpec`]s saying *at the Nth
//! hit of point P (optionally filtered to a scope substring), inject
//! fault K*. Because hits are counted deterministically and the only
//! randomness is a seeded [`splitmix64`] stream (delay jitter), a plan
//! replays the same failure scenario bit-for-bit on every run — the
//! property the chaos test suite leans on to assert that campaigns
//! recover to byte-identical reports.
//!
//! Four fault kinds ([`FaultKind`]):
//!
//! * `panic` — unwind at the fault point (exercises `catch_unwind`
//!   isolation and poisoned-mutex recovery);
//! * `io` — return an injected [`io::Error`] from an IO-shaped point
//!   ([`raise_io`]); at a non-IO point it escalates to a panic, which
//!   fails loud instead of being silently dropped;
//! * `delay:<ms>[~<jitter-ms>]` — sleep (exercises watchdogs; jitter is
//!   drawn from the plan seed, never from thread-local randomness);
//! * `abort` — kill the process without unwinding (exercises
//!   checkpoint/resume).
//!
//! Consumers compile their fault points behind a `chaos` cargo feature:
//! with the feature off the call sites expand to nothing; with it on but
//! no plan armed, a hit costs one relaxed atomic load.
//!
//! ```
//! use hetsched_chaos as chaos;
//! let plan = chaos::FaultPlan::parse("manifest.append@2=io").unwrap();
//! let _guard = chaos::armed(plan); // disarms on drop
//! assert!(chaos::raise_io("manifest.append", &"cell-0").is_ok()); // hit 1
//! assert!(chaos::raise_io("manifest.append", &"cell-1").is_err()); // hit 2: injected
//! ```

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a panic at the fault point.
    Panic,
    /// Return an injected [`io::Error`] (from [`raise_io`] points; a
    /// [`raise`] point escalates it to a panic).
    Io,
    /// Sleep for `millis` plus a seeded jitter draw in `0..=jitter_millis`.
    Delay {
        /// Base sleep duration in milliseconds.
        millis: u64,
        /// Upper bound of the seeded jitter added on top (0 = none).
        jitter_millis: u64,
    },
    /// Kill the process without unwinding (`std::process::abort`).
    Abort,
}

impl FaultKind {
    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "panic" => return Ok(FaultKind::Panic),
            "io" => return Ok(FaultKind::Io),
            "abort" => return Ok(FaultKind::Abort),
            _ => {}
        }
        let millis = text
            .strip_prefix("delay:")
            .ok_or_else(|| format!("unknown fault kind `{text}` (panic|io|abort|delay:<ms>)"))?;
        let (base, jitter) = match millis.split_once('~') {
            Some((b, j)) => (b, j),
            None => (millis, "0"),
        };
        Ok(FaultKind::Delay {
            millis: base
                .trim()
                .parse()
                .map_err(|_| format!("bad delay milliseconds in `{text}`"))?,
            jitter_millis: jitter
                .trim()
                .parse()
                .map_err(|_| format!("bad delay jitter in `{text}`"))?,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Io => write!(f, "io"),
            FaultKind::Abort => write!(f, "abort"),
            FaultKind::Delay {
                millis,
                jitter_millis: 0,
            } => write!(f, "delay:{millis}"),
            FaultKind::Delay {
                millis,
                jitter_millis,
            } => write!(f, "delay:{millis}~{jitter_millis}"),
        }
    }
}

/// One fault rule: at hits `nth .. nth + count` of `point` (counting only
/// hits whose scope contains `scope`, when set), inject `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault point name, e.g. `"campaign.cell.run"`.
    pub point: String,
    /// Substring filter on the hit's scope label (a cell id, a path, …);
    /// `None` matches every hit of the point.
    pub scope: Option<String>,
    /// 1-based hit index at which the fault starts firing.
    pub nth: u64,
    /// How many consecutive matching hits fire (≥ 1).
    pub count: u64,
    /// The injected fault.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A spec firing `kind` exactly at the `nth` matching hit of `point`.
    pub fn new(point: impl Into<String>, nth: u64, kind: FaultKind) -> Self {
        FaultSpec {
            point: point.into(),
            scope: None,
            nth: nth.max(1),
            count: 1,
            kind,
        }
    }

    /// Restricts the spec to hits whose scope contains `scope`.
    #[must_use]
    pub fn scoped(mut self, scope: impl Into<String>) -> Self {
        self.scope = Some(scope.into());
        self
    }

    /// Fires for `count` consecutive matching hits instead of one.
    #[must_use]
    pub fn times(mut self, count: u64) -> Self {
        self.count = count.max(1);
        self
    }

    /// Parses `point[scope]@nth[xcount]=kind`.
    fn parse(entry: &str) -> Result<Self, String> {
        let (site, kind) = entry
            .split_once('=')
            .ok_or_else(|| format!("`{entry}` needs `=<kind>`"))?;
        let kind = FaultKind::parse(kind.trim())?;
        let (target, occurrence) = site
            .trim()
            .rsplit_once('@')
            .ok_or_else(|| format!("`{entry}` needs `@<nth>`"))?;
        let (nth, count) = match occurrence.split_once('x') {
            Some((n, c)) => (n, c),
            None => (occurrence, "1"),
        };
        let nth: u64 = nth
            .trim()
            .parse()
            .map_err(|_| format!("bad hit index in `{entry}`"))?;
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("bad hit count in `{entry}`"))?;
        if nth == 0 || count == 0 {
            return Err(format!("hit index and count must be >= 1 in `{entry}`"));
        }
        let (point, scope) = match target.split_once('[') {
            Some((p, rest)) => {
                let scope = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("unclosed `[` in `{entry}`"))?;
                (p.trim(), Some(scope.to_string()))
            }
            None => (target.trim(), None),
        };
        if point.is_empty() {
            return Err(format!("empty fault point in `{entry}`"));
        }
        Ok(FaultSpec {
            point: point.to_string(),
            scope,
            nth,
            count,
            kind,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.point)?;
        if let Some(scope) = &self.scope {
            write!(f, "[{scope}]")?;
        }
        write!(f, "@{}", self.nth)?;
        if self.count != 1 {
            write!(f, "x{}", self.count)?;
        }
        write!(f, "={}", self.kind)
    }
}

/// A seeded, replayable failure scenario: an ordered list of
/// [`FaultSpec`]s plus the seed driving delay jitter. When several specs
/// match the same hit, the first in plan order fires (every matching
/// spec's hit counter still advances, so the decision is order-stable).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the jitter stream — independent of every engine RNG.
    pub seed: u64,
    /// The fault rules, in priority order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one fault rule.
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Parses the `--chaos-plan` string syntax: `;`-separated entries,
    /// each `point[scope]@nth[xcount]=kind` with
    /// `kind ∈ panic | io | abort | delay:<ms>[~<jitter-ms>]`, plus an
    /// optional `seed=<u64>` entry. Example:
    ///
    /// `campaign.cell.run@2=panic; manifest.append@3=io; seed=7`
    ///
    /// # Errors
    ///
    /// A human-readable message describing the malformed entry, or a plan
    /// with no fault entries at all.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for raw in text.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed in `{entry}`"))?;
                continue;
            }
            plan.faults.push(FaultSpec::parse(entry)?);
        }
        if plan.faults.is_empty() {
            return Err("fault plan has no fault entries".to_string());
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.seed != 0 {
            write!(f, "seed={}", self.seed)?;
            if !self.faults.is_empty() {
                write!(f, "; ")?;
            }
        }
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

/// splitmix64 — the deterministic stream behind delay jitter (and
/// available to consumers needing seeded jitter off their engine RNGs).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct ActivePlan {
    plan: FaultPlan,
    hits: Vec<u64>,
    injected: Vec<u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// The registry mutex is accessed from fault points that may themselves
/// panic while a test observes the aftermath; recover instead of
/// cascading the poison.
fn registry() -> MutexGuard<'static, Option<ActivePlan>> {
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `plan` process-wide, replacing any armed plan (hit counters reset).
pub fn arm(plan: FaultPlan) {
    tracing::info!("chaos: arming fault plan `{plan}`");
    let n = plan.faults.len();
    *registry() = Some(ActivePlan {
        hits: vec![0; n],
        injected: vec![0; n],
        plan,
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the registry, returning the per-spec injected-fault tally of
/// the plan that was armed (empty when none was).
pub fn disarm() -> Vec<(String, u64)> {
    ARMED.store(false, Ordering::SeqCst);
    match registry().take() {
        None => Vec::new(),
        Some(active) => active
            .plan
            .faults
            .iter()
            .zip(&active.injected)
            .map(|(spec, &injected)| (spec.to_string(), injected))
            .collect(),
    }
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Process-cumulative count of injected faults (monotone across
/// arm/disarm cycles — the telemetry layer snapshots this, so every
/// injected fault is accounted for even after the plan is gone).
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Per-spec injected-fault tally of the currently armed plan.
pub fn tally() -> Vec<(String, u64)> {
    registry()
        .as_ref()
        .map(|active| {
            active
                .plan
                .faults
                .iter()
                .zip(&active.injected)
                .map(|(spec, &injected)| (spec.to_string(), injected))
                .collect()
        })
        .unwrap_or_default()
}

/// RAII arming for tests: [`arm`]s on construction, [`disarm`]s on drop
/// (including on panic, so a failed assertion can't leak faults into the
/// next test).
pub struct ArmedGuard {
    _private: (),
}

/// Arms `plan` and returns a guard that disarms when dropped.
pub fn armed(plan: FaultPlan) -> ArmedGuard {
    arm(plan);
    ArmedGuard { _private: () }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        let _ = disarm();
    }
}

/// The fault (if any) to inject for this hit, decided and recorded under
/// the registry lock; the fault itself executes after the lock is gone.
fn decide(point: &str, scope: &str) -> Option<(FaultKind, u64, u64)> {
    let mut guard = registry();
    let active = guard.as_mut()?;
    let ActivePlan {
        plan,
        hits,
        injected,
    } = active;
    let mut fired = None;
    for (i, spec) in plan.faults.iter().enumerate() {
        if spec.point != point {
            continue;
        }
        if let Some(filter) = &spec.scope {
            if !scope.contains(filter.as_str()) {
                continue;
            }
        }
        hits[i] += 1;
        let hit = hits[i];
        if fired.is_none() && hit >= spec.nth && hit - spec.nth < spec.count {
            injected[i] += 1;
            INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
            let jitter_seed = splitmix64(plan.seed ^ (i as u64) ^ hit.wrapping_mul(0x9E37));
            fired = Some((spec.kind, hit, jitter_seed));
        }
    }
    fired
}

fn perform(
    kind: FaultKind,
    point: &str,
    scope: &str,
    hit: u64,
    jitter_seed: u64,
) -> io::Result<()> {
    match kind {
        FaultKind::Panic => {
            tracing::warn!("chaos: injecting panic at {point} ({scope}), hit {hit}");
            panic!("chaos: injected panic at {point} ({scope}), hit {hit}");
        }
        FaultKind::Io => {
            tracing::warn!("chaos: injecting io error at {point} ({scope}), hit {hit}");
            Err(io::Error::other(format!(
                "chaos: injected io error at {point} ({scope}), hit {hit}"
            )))
        }
        FaultKind::Delay {
            millis,
            jitter_millis,
        } => {
            let extra = if jitter_millis == 0 {
                0
            } else {
                jitter_seed % (jitter_millis + 1)
            };
            tracing::warn!(
                "chaos: injecting {}ms delay at {point} ({scope}), hit {hit}",
                millis + extra
            );
            std::thread::sleep(Duration::from_millis(millis + extra));
            Ok(())
        }
        FaultKind::Abort => {
            eprintln!("chaos: injected abort at {point} ({scope}), hit {hit}");
            std::process::abort();
        }
    }
}

/// A plain fault point: panics, sleeps, or aborts per the armed plan.
/// `scope` labels the hit for scope filters (a cell id, a path, …) and is
/// only formatted when a plan is armed. An injected `io` fault at a plain
/// point escalates to a panic — failing loud beats vanishing.
pub fn raise(point: &str, scope: &dyn fmt::Display) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let scope = scope.to_string();
    if let Some((kind, hit, jitter_seed)) = decide(point, &scope) {
        if let Err(e) = perform(kind, point, &scope, hit, jitter_seed) {
            panic!("chaos: io fault at non-io fault point {point}: {e}");
        }
    }
}

/// An IO-shaped fault point: like [`raise`], but an injected `io` fault
/// comes back as `Err` for the caller's normal error path to handle.
///
/// # Errors
///
/// The injected [`io::Error`] when an `io` fault fires at this hit.
pub fn raise_io(point: &str, scope: &dyn fmt::Display) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let scope = scope.to_string();
    match decide(point, &scope) {
        None => Ok(()),
        Some((kind, hit, jitter_seed)) => perform(kind, point, &scope, hit, jitter_seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Instant;

    /// The registry is process-global; tests serialise on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn plan_parse_round_trips_through_display() {
        for text in [
            "campaign.cell.run@2=panic",
            "manifest.append[One/nsga2]@3x4=io",
            "seed=42; evaluator.evaluate@100=delay:50~20; journal.write@1=abort",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            let rendered = plan.to_string();
            assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "",
            "no-equals",
            "point@=panic",
            "point@0=panic",
            "point@1x0=io",
            "point@1=explode",
            "point@1=delay:fast",
            "point[open@1=panic",
            "@1=panic",
            "seed=abc; point@1=panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn nth_and_count_select_exact_hits() {
        let _serial = serial();
        let before = injected_total();
        let guard = armed(FaultPlan::parse("p@2x2=io").unwrap());
        let outcomes: Vec<bool> = (0..5).map(|_| raise_io("p", &"s").is_err()).collect();
        assert_eq!(outcomes, vec![false, true, true, false, false]);
        assert_eq!(tally(), vec![("p@2x2=io".to_string(), 2)]);
        drop(guard);
        assert_eq!(injected_total() - before, 2);
        assert!(!is_armed());
    }

    #[test]
    fn scope_filter_counts_only_matching_hits() {
        let _serial = serial();
        let _guard = armed(FaultPlan::parse("p[cell-b]@1=io").unwrap());
        assert!(raise_io("p", &"cell-a").is_ok(), "scope mismatch");
        assert!(raise_io("q", &"cell-b").is_ok(), "point mismatch");
        assert!(raise_io("p", &"the-cell-b-label").is_err(), "substring hit");
    }

    #[test]
    fn first_matching_spec_in_plan_order_wins() {
        let _serial = serial();
        let plan = FaultPlan::new(0)
            .with_fault(FaultSpec::new("p", 1, FaultKind::Io))
            .with_fault(FaultSpec::new("p", 1, FaultKind::Panic));
        let _guard = armed(plan);
        // Were the panic spec to win, this would unwind instead.
        assert!(raise_io("p", &"s").is_err());
        assert_eq!(tally()[0].1, 1);
        assert_eq!(tally()[1].1, 0, "loser spec still counted the hit");
    }

    #[test]
    fn panic_kind_unwinds_with_point_in_message() {
        let _serial = serial();
        let _guard = armed(FaultPlan::parse("boom.site@1=panic").unwrap());
        let err = catch_unwind(AssertUnwindSafe(|| raise("boom.site", &"scope"))).unwrap_err();
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom.site"), "{message}");
        // The registry mutex was not held across the panic: it still works.
        assert!(raise_io("boom.site", &"scope").is_ok());
    }

    #[test]
    fn delay_kind_sleeps_deterministically() {
        let _serial = serial();
        let _guard = armed(FaultPlan::parse("slow@1=delay:30").unwrap());
        let t = Instant::now();
        raise("slow", &"s");
        assert!(t.elapsed() >= Duration::from_millis(30));
        // Hit 2 is past the window: no sleep.
        let t = Instant::now();
        raise("slow", &"s");
        assert!(t.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn disarmed_points_are_noops() {
        let _serial = serial();
        let _ = disarm();
        raise("anything", &"s");
        assert!(raise_io("anything", &"s").is_ok());
    }

    #[test]
    fn splitmix_is_stable() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
