//! Min-Min completion time (§V-B4; Braun et al. 2001, Ibarra & Kim 1977).
//!
//! Two-stage greedy: stage one finds, for every unmapped task, the machine
//! giving its minimum completion time; stage two maps the (task, machine)
//! pair with the overall minimum completion time and repeats until all
//! tasks are mapped. The *global scheduling order* records the mapping
//! sequence, so machines execute tasks in the order Min-Min committed them.
//!
//! The naive loop is O(T²·M); this implementation caches each task's best
//! pair and only rescans tasks whose cached best machine was the one just
//! updated (its queue grew; all other machines are untouched, and queue
//! times only grow, so other cached bests stay valid). Typical complexity
//! drops to O(T·M + T·k) with small k.

use hetsched_data::{HcSystem, MachineId};
use hetsched_sim::Allocation;
use hetsched_workload::Trace;

/// Runs Min-Min completion time over the trace.
pub fn min_min_completion_time(system: &HcSystem, trace: &Trace) -> Allocation {
    let n = trace.len();
    let tasks = trace.tasks();
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut mapped = vec![false; n];
    let mut assignment = vec![MachineId(0); n];
    let mut order = vec![0u32; n];

    // Cached stage-one result per task: (completion, machine).
    let best_for = |t: usize, machine_free: &[f64]| -> (f64, MachineId) {
        let task = &tasks[t];
        let mut best = (f64::INFINITY, MachineId(0));
        for &m in system.feasible_machines(task.task_type) {
            let start = machine_free[m.index()].max(task.arrival);
            let finish = start + system.exec_time(task.task_type, m);
            if finish < best.0 {
                best = (finish, m);
            }
        }
        best
    };
    let mut cache: Vec<(f64, MachineId)> = (0..n).map(|t| best_for(t, &machine_free)).collect();

    for step in 0..n {
        // Stage two: overall minimum completion time among unmapped tasks.
        let mut pick = usize::MAX;
        let mut pick_finish = f64::INFINITY;
        for t in 0..n {
            if !mapped[t] && cache[t].0 < pick_finish {
                pick_finish = cache[t].0;
                pick = t;
            }
        }
        debug_assert!(pick != usize::MAX);
        let (finish, machine) = cache[pick];
        mapped[pick] = true;
        assignment[pick] = machine;
        order[pick] = step as u32;
        machine_free[machine.index()] = finish;
        // Invalidate: only tasks whose cached best sat on `machine` can
        // have changed (that queue grew; everything else is untouched).
        for t in 0..n {
            if !mapped[t] && cache[t].1 == machine {
                cache[t] = best_for(t, &machine_free);
            }
        }
    }
    Allocation {
        machine: assignment,
        order,
    }
}

/// Reference implementation: the naive O(T²·M) double loop the cached
/// version is validated against. Exposed for the implementation-ablation
/// bench; use [`min_min_completion_time`] everywhere else.
pub fn min_min_completion_time_naive(system: &HcSystem, trace: &Trace) -> Allocation {
    let n = trace.len();
    let tasks = trace.tasks();
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut mapped = vec![false; n];
    let mut assignment = vec![MachineId(0); n];
    let mut order = vec![0u32; n];
    for step in 0..n {
        let mut pick = (usize::MAX, MachineId(0));
        let mut pick_finish = f64::INFINITY;
        for t in 0..n {
            if mapped[t] {
                continue;
            }
            for &m in system.feasible_machines(tasks[t].task_type) {
                let start = machine_free[m.index()].max(tasks[t].arrival);
                let finish = start + system.exec_time(tasks[t].task_type, m);
                if finish < pick_finish {
                    pick_finish = finish;
                    pick = (t, m);
                }
            }
        }
        let (t, m) = pick;
        mapped[t] = true;
        assignment[t] = m;
        order[t] = step as u32;
        machine_free[m.index()] = pick_finish;
    }
    Allocation {
        machine: assignment,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_sim::{DetailedOutcome, Evaluator};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap();
        (sys, trace)
    }

    /// Reference implementation: the naive O(T²·M) double loop.
    fn naive_min_min(system: &HcSystem, trace: &Trace) -> Allocation {
        min_min_completion_time_naive(system, trace)
    }

    #[test]
    fn matches_naive_reference() {
        for seed in [1, 2, 3] {
            let (sys, trace) = setup(60, seed);
            let fast = min_min_completion_time(&sys, &trace);
            let naive = naive_min_min(&sys, &trace);
            // Objective values must agree exactly (allocations may differ
            // only on exact ties, which the shared scan order prevents).
            assert_eq!(fast, naive, "seed {seed}");
        }
    }

    #[test]
    fn produces_feasible_allocation_with_permutation_order() {
        let (sys, trace) = setup(100, 9);
        let alloc = min_min_completion_time(&sys, &trace);
        assert!(alloc.validate(&sys, &trace).is_ok());
        let mut order = alloc.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn beats_single_machine_makespan() {
        let (sys, trace) = setup(80, 10);
        let mut ev = Evaluator::new(&sys, &trace);
        let mm = ev.evaluate(&min_min_completion_time(&sys, &trace));
        // Everything on the fastest machine (type 6) as a weak baseline.
        let single = Allocation::with_arrival_order(vec![MachineId(6); 80]);
        let so = ev.evaluate(&single);
        assert!(mm.makespan < so.makespan);
    }

    #[test]
    fn schedule_start_times_match_greedy_commitments() {
        // The committed completion times assume machines run tasks in
        // commitment order; the simulator must reproduce the same makespan.
        let (sys, trace) = setup(40, 11);
        let alloc = min_min_completion_time(&sys, &trace);
        let detail = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        for r in &detail.tasks {
            assert!(r.start >= r.arrival);
        }
    }
}
