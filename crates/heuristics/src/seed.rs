//! [`SeedKind`]: the five initial-population configurations compared in the
//! paper's figures (four heuristic seeds plus the all-random population).

use crate::{max_utility, max_utility_per_energy, min_energy, min_min_completion_time};
use hetsched_data::HcSystem;
use hetsched_sim::Allocation;
use hetsched_workload::Trace;
use serde::{Deserialize, Serialize};

/// Which seed (if any) to inject into an NSGA-II initial population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeedKind {
    /// Diamond marker in the figures.
    MinEnergy,
    /// Circle marker.
    MaxUtility,
    /// Triangle marker.
    MaxUtilityPerEnergy,
    /// Square marker.
    MinMinCompletionTime,
    /// Star marker: completely random initial population.
    Random,
}

impl SeedKind {
    /// All five configurations, in the paper's figure-legend order.
    pub const ALL: [SeedKind; 5] = [
        SeedKind::MinEnergy,
        SeedKind::MinMinCompletionTime,
        SeedKind::MaxUtility,
        SeedKind::MaxUtilityPerEnergy,
        SeedKind::Random,
    ];

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            SeedKind::MinEnergy => "min-energy",
            SeedKind::MaxUtility => "max-utility",
            SeedKind::MaxUtilityPerEnergy => "max-utility-per-energy",
            SeedKind::MinMinCompletionTime => "min-min",
            SeedKind::Random => "random",
        }
    }

    /// Generates the seed chromosomes for this configuration (empty for
    /// [`SeedKind::Random`] — the engine fills the population randomly).
    pub fn seeds(self, system: &HcSystem, trace: &Trace) -> Vec<Allocation> {
        match self {
            SeedKind::MinEnergy => vec![min_energy(system, trace)],
            SeedKind::MaxUtility => vec![max_utility(system, trace)],
            SeedKind::MaxUtilityPerEnergy => vec![max_utility_per_energy(system, trace)],
            SeedKind::MinMinCompletionTime => vec![min_min_completion_time(system, trace)],
            SeedKind::Random => Vec::new(),
        }
    }
}

impl std::fmt::Display for SeedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_feasible_or_empty() {
        let sys = real_system();
        let trace = TraceGenerator::new(50, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(77))
            .unwrap();
        for kind in SeedKind::ALL {
            let seeds = kind.seeds(&sys, &trace);
            if kind == SeedKind::Random {
                assert!(seeds.is_empty());
            } else {
                assert_eq!(seeds.len(), 1);
                assert!(seeds[0].validate(&sys, &trace).is_ok(), "{kind}");
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SeedKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(SeedKind::MinEnergy.to_string(), "min-energy");
    }
}
