#![warn(missing_docs)]

//! Seeding heuristics (§V-B): greedy allocations injected into the NSGA-II
//! initial population to "guide the genetic algorithm into better portions
//! of the search space faster than an all random initial population".
//!
//! | Heuristic | Stages | Greedy criterion |
//! |---|---|---|
//! | [`min_energy`] | 1 | minimise per-task EEC |
//! | [`max_utility`] | 1 | maximise per-task utility given queue state |
//! | [`max_utility_per_energy`] | 1 | maximise utility ÷ energy |
//! | [`min_min_completion_time`] | 2 | global minimum completion time |
//!
//! All heuristics return plain [`Allocation`](hetsched_sim::Allocation)s, feasible by construction
//! (they only consider machines that can execute each task's type).

pub mod greedy;
pub mod minmin;
pub mod seed;

pub use greedy::{max_utility, max_utility_per_energy, min_energy};
pub use minmin::{min_min_completion_time, min_min_completion_time_naive};
pub use seed::SeedKind;

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_sim::Evaluator;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cross-heuristic sanity: each heuristic should win (or tie) on its own
    /// criterion against the others.
    #[test]
    fn each_heuristic_excels_at_its_objective() {
        let sys = real_system();
        let trace = TraceGenerator::new(120, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(100))
            .unwrap();
        let mut ev = Evaluator::new(&sys, &trace);

        let me = ev.evaluate(&min_energy(&sys, &trace));
        let mu = ev.evaluate(&max_utility(&sys, &trace));
        let upe = ev.evaluate(&max_utility_per_energy(&sys, &trace));
        let mm = ev.evaluate(&min_min_completion_time(&sys, &trace));

        // Min Energy is *provably* minimal in energy.
        let bound = ev.min_possible_energy();
        assert!((me.energy - bound).abs() < 1e-6);
        for o in [&mu, &upe, &mm] {
            assert!(o.energy >= me.energy - 1e-6);
        }

        // Max Utility earns at least as much as Min Energy (greedy wrt
        // utility vs a heuristic that ignores utility entirely).
        assert!(mu.utility >= me.utility);

        // Min-Min drives completion times hard: far faster than Min Energy
        // and the top utility earner of the four (its greedy commitments are
        // not globally makespan-optimal, so we don't assert a strict win
        // over the other queue-aware heuristics).
        assert!(mm.makespan < me.makespan);
        for o in [&me, &mu, &upe] {
            assert!(
                mm.utility >= o.utility - 1e-9,
                "min-min should earn the most utility"
            );
        }

        // Utility-per-energy of the UPE seed beats the Min Energy seed's.
        assert!(upe.utility / upe.energy >= me.utility / me.energy - 1e-12);
    }
}
