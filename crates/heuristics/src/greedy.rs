//! Single-stage greedy heuristics (§V-B1–B3). All three walk the tasks in
//! arrival order (ties already resolved by the trace's id assignment) and
//! greedily pick a machine for each; the global scheduling order is the
//! arrival order.

use hetsched_data::{HcSystem, MachineId};
use hetsched_sim::Allocation;
use hetsched_workload::Trace;

/// Min Energy (§V-B1): maps each task to the feasible machine with the
/// smallest EEC. Produces *the* minimum-energy allocation (energy is
/// assignment-only, so the greedy choice is globally optimal in energy).
pub fn min_energy(system: &HcSystem, trace: &Trace) -> Allocation {
    let machine = trace
        .tasks()
        .iter()
        .map(|t| {
            *system
                .feasible_machines(t.task_type)
                .iter()
                .min_by(|&&a, &&b| {
                    system
                        .energy(t.task_type, a)
                        .total_cmp(&system.energy(t.task_type, b))
                })
                .expect("validated systems leave no task type unexecutable")
        })
        .collect();
    Allocation::with_arrival_order(machine)
}

/// Shared skeleton of the queue-aware greedy heuristics: walks tasks in
/// arrival order, tracking when each machine becomes free, and picks the
/// machine maximising `score(utility, energy)` for the task at hand.
fn queue_aware_greedy(
    system: &HcSystem,
    trace: &Trace,
    score: impl Fn(f64, f64) -> f64,
) -> Allocation {
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut assignment = Vec::with_capacity(trace.len());
    for task in trace.tasks() {
        let mut best: Option<(f64, MachineId, f64)> = None;
        for &m in system.feasible_machines(task.task_type) {
            let start = machine_free[m.index()].max(task.arrival);
            let finish = start + system.exec_time(task.task_type, m);
            let utility = task.tuf.utility(finish - task.arrival);
            let energy = system.energy(task.task_type, m);
            let s = score(utility, energy);
            // Ties broken toward lower energy, then lower machine id (the
            // iteration order), keeping the heuristic deterministic.
            let better = match best {
                None => true,
                Some((bs, _, be)) => s > bs || (s == bs && energy < be),
            };
            if better {
                best = Some((s, m, energy));
            }
        }
        let (_, m, _) = best.expect("at least one feasible machine");
        machine_free[m.index()] =
            machine_free[m.index()].max(task.arrival) + system.exec_time(task.task_type, m);
        assignment.push(m);
    }
    Allocation::with_arrival_order(assignment)
}

/// Max Utility (§V-B2): maps each task to the machine maximising the
/// utility it would earn given current queue completion times. No global
/// optimality guarantee (the paper notes the same).
pub fn max_utility(system: &HcSystem, trace: &Trace) -> Allocation {
    queue_aware_greedy(system, trace, |utility, _| utility)
}

/// Max Utility-per-Energy (§V-B3): maps each task to the machine with the
/// best utility earned per joule spent.
pub fn max_utility_per_energy(system: &HcSystem, trace: &Trace) -> Allocation {
    queue_aware_greedy(system, trace, |utility, energy| utility / energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_sim::Evaluator;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(55))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn min_energy_achieves_theoretical_bound() {
        let (sys, trace) = setup(80);
        let alloc = min_energy(&sys, &trace);
        assert!(alloc.validate(&sys, &trace).is_ok());
        let mut ev = Evaluator::new(&sys, &trace);
        let out = ev.evaluate(&alloc);
        assert!((out.energy - ev.min_possible_energy()).abs() < 1e-9);
    }

    #[test]
    fn max_utility_beats_min_energy_on_utility() {
        let (sys, trace) = setup(150);
        let mut ev = Evaluator::new(&sys, &trace);
        let mu = ev.evaluate(&max_utility(&sys, &trace));
        let me = ev.evaluate(&min_energy(&sys, &trace));
        assert!(
            mu.utility > me.utility,
            "max-utility {} should beat min-energy {}",
            mu.utility,
            me.utility
        );
    }

    #[test]
    fn upe_sits_between_the_extremes_in_energy() {
        let (sys, trace) = setup(150);
        let mut ev = Evaluator::new(&sys, &trace);
        let me = ev.evaluate(&min_energy(&sys, &trace));
        let mu = ev.evaluate(&max_utility(&sys, &trace));
        let upe = ev.evaluate(&max_utility_per_energy(&sys, &trace));
        assert!(upe.energy >= me.energy - 1e-9);
        // UPE should not spend more than the pure utility chaser.
        assert!(upe.energy <= mu.energy + 1e-9);
    }

    #[test]
    fn all_greedy_allocations_are_feasible_and_deterministic() {
        let (sys, trace) = setup(60);
        for f in [min_energy, max_utility, max_utility_per_energy] {
            let a = f(&sys, &trace);
            let b = f(&sys, &trace);
            assert_eq!(a, b);
            assert!(a.validate(&sys, &trace).is_ok());
            assert_eq!(a.order, (0..60u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn queue_awareness_spreads_load() {
        // Max Utility must not pile every task onto the single fastest
        // machine: queue growth makes later completions lose utility, so at
        // least two machines get used on a busy trace.
        let (sys, trace) = setup(100);
        let alloc = max_utility(&sys, &trace);
        let distinct: std::collections::HashSet<_> = alloc.machine.iter().collect();
        assert!(distinct.len() > 1, "all tasks mapped to one machine");
    }
}
